(** Synthetic loop-body generation from benchmark profiles.

    Generates innermost-loop DDGs with the structure of compiled
    scientific code: loop-carried integer induction variables feed shared
    address arithmetic, addresses feed loads, loads feed a floating-point
    expression graph, results feed stores; optional floating-point
    recurrences close dependence cycles across iterations.  The
    benchmark's {!Benchmark.shape} decides whether the fp graph entangles
    values across the whole body (expensive to partition) or decomposes
    into independent strands (partitions cleanly).

    Generation is deterministic: the same profile always yields the same
    loops ({!Rng} is seeded from the profile). *)

type loop = {
  id : string;          (** e.g. ["tomcatv.7"] *)
  benchmark : string;
  graph : Ddg.Graph.t;
  trip : int;           (** iterations per visit (profiled N) *)
  visits : int;         (** times the loop is entered *)
}

val version : string
(** Generator version tag, recorded alongside fuzz corpus entries so a
    corpus self-invalidates when regeneration semantics change.  Bumped
    whenever a change could alter the loop a given [(seed, nodes)] pair
    denotes — op mix, dependence wiring, profile randomisation, or the
    order the {!Rng} stream is consumed in. *)

val generate : Benchmark.t -> loop list
(** All loops of one benchmark. *)

val suite : unit -> loop list
(** The full 678-loop evaluation suite, every benchmark in
    {!Benchmark.all} order. *)

val random : seed:int -> ?nodes:int -> unit -> loop
(** One loop drawn from a profile that is itself randomised from
    [seed] — the fuzzer's case generator.  The structural knobs sweep a
    wider envelope than the SPECfp95 profiles while reusing the same
    body construction.  [nodes] pins the body size exactly (the fuzz
    shrinker descends it); omitted, the profile picks its own range.
    Deterministic: equal arguments yield equal loops (id
    ["fuzz<seed>.0"]). *)

val dynamic_weight : loop -> int
(** [visits * trip]: how many iterations the loop contributes to the
    program's execution (the profiling weight used for IPC). *)
