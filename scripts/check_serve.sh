#!/bin/sh
# The serve gate: drive a real `repro serve` daemon through the whole
# degradation ladder and pin the equality contract.
#
#   1. cold daemon replies == `repro client --local` reference bytes
#   2. warm daemon replies == cold replies (in-memory tier)
#   3. over-budget request degrades to a timeout-class reply
#   4. corrupt request JSON answers bad-request (and only hurts itself)
#   5. a poisoned (crashing) request answers fault once, poisoned after
#   6. queue bound sheds excess load with overloaded replies
#   7. SIGTERM drains cleanly: store saved, socket removed, exit 0
#   8. restarted daemon serves the persisted entries warm (stats
#      misses=0) with byte-identical replies
#   9. a torn on-disk table file is quarantined at startup and the
#      daemon still boots and answers (cold)
#  10. a --workers 4 daemon answers the whole degradation ladder
#      (schedule / timeout / fault / poisoned) byte-identically to the
#      workers-0 replies above
#  11. a batched burst of identical requests coalesces onto exactly one
#      computation (stats computes=1, coalesced=99) with replies
#      byte-identical to the inline reference, and a SIGTERM landing
#      mid-burst still drains cleanly
#
# Fault classes covered: torn disk write (9), worker crash (5, 10),
# over-budget request (3, 10), corrupt request JSON (4), signal during
# in-flight worker computation (11).
set -eu

DIR=$(mktemp -d /tmp/check_serve.XXXXXX)
SOCK="$DIR/serve.sock"
CACHE="$DIR/cache"
REPRO="dune exec --no-build bin/repro.exe --"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "check-serve: FAIL: $1" >&2
  [ -f "$DIR/daemon.log" ] && sed 's/^/  daemon: /' "$DIR/daemon.log" >&2
  exit 1
}

start_daemon() {
  # shellcheck disable=SC2086
  $REPRO serve --socket "$SOCK" --cache "$CACHE" $1 2>>"$DIR/daemon.log" &
  DAEMON_PID=$!
  for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup"
    sleep 0.2
  done
  fail "daemon never created $SOCK"
}

# SIGTERM the daemon and require the stable clean-drain exit code (0).
stop_daemon() {
  kill -TERM "$DAEMON_PID"
  st=0
  wait "$DAEMON_PID" || st=$?
  DAEMON_PID=""
  [ "$st" -eq 0 ] || fail "daemon exited $st after SIGTERM, wanted 0"
}

dune build bin/repro.exe

# --- 1. cold == direct reference ------------------------------------
start_daemon "--poison tomcatv.3"
$REPRO client --local -b tomcatv --loops 0,1 --mode repl > "$DIR/direct.txt"
$REPRO client --socket "$SOCK" -b tomcatv --loops 0,1 --mode repl > "$DIR/cold.txt"
diff "$DIR/direct.txt" "$DIR/cold.txt" || fail "cold daemon replies differ from direct runs"

# --- 2. warm == cold -------------------------------------------------
$REPRO client --socket "$SOCK" -b tomcatv --loops 0,1 --mode repl > "$DIR/warm.txt"
diff "$DIR/cold.txt" "$DIR/warm.txt" || fail "warm replies differ from cold"

# --- 3. over-budget request degrades to timeout ----------------------
$REPRO client --socket "$SOCK" -b tomcatv --loops 2 --budget-attempts 0 > "$DIR/budget.txt"
grep -q '"status":"degraded","class":"timeout"' "$DIR/budget.txt" \
  || fail "over-budget request did not degrade to a timeout reply"

# --- 4. corrupt request JSON -----------------------------------------
$REPRO client --socket "$SOCK" --raw '{"op":"schedule","id":"torn' > "$DIR/bad.txt"
grep -q '"status":"bad-request"' "$DIR/bad.txt" || fail "corrupt JSON not answered bad-request"

# --- 5. poisoned request: fault once, quarantined after --------------
$REPRO client --socket "$SOCK" -b tomcatv --loops 3 > "$DIR/fault1.txt"
grep -q '"status":"fault"' "$DIR/fault1.txt" || fail "injected crash not answered as fault"
$REPRO client --socket "$SOCK" -b tomcatv --loops 3 > "$DIR/fault2.txt"
grep -q '"status":"poisoned"' "$DIR/fault2.txt" || fail "repeated crash not quarantined"
# ...and an unrelated request still works (the crash convicted only itself)
$REPRO client --socket "$SOCK" -b tomcatv --loops 0 --mode repl > "$DIR/after_fault.txt"
head -1 "$DIR/cold.txt" > "$DIR/cold_first.txt"
diff "$DIR/cold_first.txt" "$DIR/after_fault.txt" || fail "healthy request disturbed by quarantine"

# --- 7. SIGTERM mid-load drains cleanly ------------------------------
# A client is mid-conversation when the signal lands: admitted requests
# still finish (their replies flush), anything later is shed, the store
# is saved and the exit code is 0.
$REPRO client --socket "$SOCK" -b swim --loops 0,1,2 --mode repl > "$DIR/drain_client.txt" &
CLIENT_PID=$!
sleep 0.3
stop_daemon
wait "$CLIENT_PID" || fail "client failed across the drain"
grep -q "drained: store saved" "$DIR/daemon.log" || fail "no clean-drain log line"
[ -S "$SOCK" ] && fail "socket file survived the drain"
ls "$CACHE"/*.json >/dev/null 2>&1 || fail "store not persisted on drain"

# --- 6. queue bound sheds load (tiny bound, pipelined burst) ---------
: > "$DIR/daemon.log"
start_daemon "--queue-bound 1"
$REPRO client --socket "$SOCK" -b tomcatv --loops 4 --repeat 6 > "$DIR/burst.txt"
grep -q '"status":"overloaded"' "$DIR/burst.txt" || fail "burst beyond queue bound not shed"
# the bound admitted at least one request, so not everything was shed
grep -qv '"status":"overloaded"' "$DIR/burst.txt" || fail "queue bound shed every request"

# --- 8. restart serves persisted entries warm ------------------------
stop_daemon
: > "$DIR/daemon.log"
start_daemon ""
$REPRO client --socket "$SOCK" -b tomcatv --loops 0,1 --mode repl > "$DIR/restart.txt"
diff "$DIR/cold.txt" "$DIR/restart.txt" || fail "restarted daemon replies differ from cold"
$REPRO client --socket "$SOCK" --loops "" --stats > "$DIR/stats.txt"
grep -q '"misses":0' "$DIR/stats.txt" || fail "restarted daemon recomputed instead of serving warm"
stop_daemon

# --- 9. torn table file quarantined, daemon boots cold ---------------
TABLE=$(ls "$CACHE"/repl-*.json | head -1)
head -c 40 "$TABLE" > "$TABLE.torn" && mv "$TABLE.torn" "$TABLE"
: > "$DIR/daemon.log"
start_daemon ""
$REPRO client --socket "$SOCK" -b tomcatv --loops 0 --mode repl > "$DIR/torn.txt"
head -1 "$DIR/cold.txt" > "$DIR/cold_first.txt"
diff "$DIR/cold_first.txt" "$DIR/torn.txt" || fail "cold recompute after torn file differs"
grep -q "quarantined corrupt table file" "$DIR/daemon.log" || fail "torn file not quarantined"
ls "$CACHE"/*.corrupt >/dev/null 2>&1 || fail "no .corrupt quarantine file"
stop_daemon

# --- 10. worker pool: --workers 4 byte-identical to workers 0 --------
# A fresh cache so every schedule request is a genuine miss computed on
# a worker domain, then the whole ladder re-held to the workers-0 bytes
# captured above: full replies, the timeout degrade, the fault and the
# quarantine.
CACHE="$DIR/cache_workers"
: > "$DIR/daemon.log"
start_daemon "--poison tomcatv.3 --workers 4 --queue-bound 256"
grep -q "worker pool: 4 domain(s)" "$DIR/daemon.log" || fail "daemon did not start its worker pool"
$REPRO client --socket "$SOCK" -b tomcatv --loops 0,1 --mode repl > "$DIR/workers.txt"
diff "$DIR/cold.txt" "$DIR/workers.txt" || fail "--workers 4 replies differ from workers-0"
$REPRO client --socket "$SOCK" -b tomcatv --loops 2 --budget-attempts 0 > "$DIR/workers_budget.txt"
diff "$DIR/budget.txt" "$DIR/workers_budget.txt" || fail "--workers 4 timeout reply differs"
$REPRO client --socket "$SOCK" -b tomcatv --loops 3 > "$DIR/workers_fault.txt"
diff "$DIR/fault1.txt" "$DIR/workers_fault.txt" || fail "--workers 4 fault reply differs"
$REPRO client --socket "$SOCK" -b tomcatv --loops 3 > "$DIR/workers_poisoned.txt"
diff "$DIR/fault2.txt" "$DIR/workers_poisoned.txt" || fail "--workers 4 poisoned reply differs"
$REPRO client --socket "$SOCK" --loops "" --stats > "$DIR/workers_stats.txt"
grep -q '"workers":4' "$DIR/workers_stats.txt" || fail "stats does not report the worker count"
stop_daemon

# --- 11. batched burst coalesces, SIGTERM mid-burst drains -----------
# 100 identical cold requests in one atomically-admitted batch line:
# exactly one computation runs, the other 99 coalesce onto it, and the
# one array reply is byte-identical to 100 inline reference replies.
CACHE="$DIR/cache_batch"
: > "$DIR/daemon.log"
start_daemon "--workers 4 --queue-bound 256"
$REPRO client --socket "$SOCK" -b tomcatv --loops 2 --mode repl --batch --repeat 100 > "$DIR/burst_batch.txt"
[ "$(wc -l < "$DIR/burst_batch.txt")" -eq 1 ] || fail "batch did not answer one array line"
$REPRO client --local -b tomcatv --loops 2 --mode repl --repeat 100 > "$DIR/burst_direct.txt"
printf '[%s]\n' "$(paste -sd, "$DIR/burst_direct.txt")" > "$DIR/burst_expect.txt"
diff "$DIR/burst_expect.txt" "$DIR/burst_batch.txt" || fail "batched burst replies differ from the inline reference"
$REPRO client --socket "$SOCK" --loops "" --stats > "$DIR/burst_stats.txt"
grep -q '"computes":1' "$DIR/burst_stats.txt" || fail "burst of 100 ran more than one computation"
grep -q '"coalesced":99' "$DIR/burst_stats.txt" || fail "burst of 100 did not coalesce 99 requests"
# SIGTERM lands while a fresh batch is still computing on the workers:
# the admitted batch finishes, its reply flushes, the daemon exits 0.
$REPRO client --socket "$SOCK" -b swim --loops 3,4 --mode repl --batch --repeat 10 > "$DIR/drain_batch.txt" &
CLIENT_PID=$!
sleep 0.3
stop_daemon
wait "$CLIENT_PID" || fail "batch client failed across the drain"
[ "$(wc -l < "$DIR/drain_batch.txt")" -eq 1 ] || fail "mid-drain batch lost its reply"
grep -q "drained: store saved" "$DIR/daemon.log" || fail "no clean-drain log line after mid-burst SIGTERM"

echo "check-serve: all serve-gate checks passed"
