(* Property-based tests (qcheck): random loop bodies and machine
   configurations drive the core invariants end-to-end — every schedule
   the system emits must satisfy the machine checker, replication must
   remove exactly the communication it targets, and the analytic and
   simulated cycle counts must agree. *)

open Ddg

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* A random loop body in the style of compiled code: a DAG of typed ops
   with optional loop-carried self-recurrences.  Built from a seed so
   failures are reproducible from the printed counterexample. *)
let graph_of_seed seed =
  let rng = Workload.Rng.create seed in
  let b = Graph.Builder.create ~name:(Printf.sprintf "rand%d" seed) () in
  let n = Workload.Rng.range rng 3 24 in
  let producers = ref [] in
  (* producers: value-producing node ids *)
  for _ = 0 to n - 1 do
    let r = Workload.Rng.float rng in
    let op =
      if r < 0.18 then Machine.Opclass.Load
      else if r < 0.28 && !producers <> [] then Machine.Opclass.Store
      else if r < 0.5 then Machine.Opclass.Int_arith
      else if r < 0.56 then Machine.Opclass.Int_mul
      else if r < 0.85 then Machine.Opclass.Fp_arith
      else if r < 0.97 then Machine.Opclass.Fp_mul
      else Machine.Opclass.Fp_div
    in
    let id = Graph.Builder.add b op in
    let n_inputs =
      match op with
      | Machine.Opclass.Store -> 1 + Workload.Rng.int rng 2
      | Machine.Opclass.Load -> Workload.Rng.int rng 2
      | _ -> Workload.Rng.int rng 3
    in
    for _ = 1 to n_inputs do
      if !producers <> [] then
        let src = Workload.Rng.pick rng !producers in
        Graph.Builder.depend b ~src ~dst:id
    done;
    (* occasional loop-carried self-dependence *)
    if (not (Machine.Opclass.is_store op)) && Workload.Rng.chance rng 0.15
    then
      Graph.Builder.depend b ~distance:(1 + Workload.Rng.int rng 2) ~src:id
        ~dst:id;
    if not (Machine.Opclass.is_store op) then producers := id :: !producers
  done;
  Graph.Builder.build b

let configs =
  Machine.Config.unified ~registers:64
  :: Machine.Config.unified ~registers:32
  :: Machine.Config.heterogeneous ~buses:1 ~bus_latency:2 ~registers:60
       ~clusters:[ (2, 0, 2); (1, 2, 1); (1, 2, 1) ]
  :: Machine.Config.with_copy_int_slot
       (Machine.Config.make ~clusters:4 ~buses:2 ~bus_latency:2 ~registers:64)
  :: Machine.Config.paper_configs

let config_of_index i = List.nth configs (i mod List.length configs)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000)

let pair_arb =
  QCheck.make
    ~print:(fun (s, c) ->
      Printf.sprintf "seed=%d config=%s" s
        (Machine.Config.name (config_of_index c)))
    QCheck.Gen.(pair (0 -- 100000) (0 -- 20))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_mii_boundary =
  QCheck.Test.make ~name:"rec_mii is the feasibility boundary" ~count:200
    seed_arb (fun seed ->
      let g = graph_of_seed seed in
      let r = Mii.rec_mii g in
      Mii.feasible_ii g r && (r = 1 || not (Mii.feasible_ii g (r - 1))))

let prop_analysis_windows =
  QCheck.Test.make ~name:"asap <= alap and slack >= 0" ~count:200 seed_arb
    (fun seed ->
      let g = graph_of_seed seed in
      let ii = max (Mii.rec_mii g) 1 in
      let a = Analysis.compute g ~ii in
      List.for_all (fun v -> Analysis.asap a v <= Analysis.alap a v)
        (Graph.nodes g)
      && List.for_all (fun e -> Analysis.slack a e >= 0) (Graph.edges g)
      && List.for_all
           (fun v ->
             Analysis.asap a v + Analysis.height a v
             <= Analysis.critical_path a)
           (Graph.nodes g))

let prop_scc_partition =
  QCheck.Test.make ~name:"SCCs partition the node set" ~count:200 seed_arb
    (fun seed ->
      let g = graph_of_seed seed in
      let members =
        List.concat_map (fun c -> c.Scc.members) (Scc.compute g)
      in
      List.sort_uniq compare members = Graph.nodes g
      && List.length members = Graph.n_nodes g)

let prop_ordering_is_permutation =
  QCheck.Test.make ~name:"SMS ordering is a permutation" ~count:200 seed_arb
    (fun seed ->
      let g = graph_of_seed seed in
      let ii = max 2 (Mii.rec_mii g) in
      let order = Sched.Ordering.order g ~ii in
      List.sort compare order = Graph.nodes g)

let prop_partition_valid =
  QCheck.Test.make ~name:"initial partition is valid" ~count:150 pair_arb
    (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      let ii = Mii.mii config g in
      Sched.Partition.is_valid config (Sched.Partition.initial config g ~ii))

let prop_schedules_are_legal =
  QCheck.Test.make ~name:"every emitted schedule passes the checker"
    ~count:120 pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      match Sched.Driver.schedule_loop config g with
      | Error _ -> QCheck.assume_fail ()
      | Ok o -> Result.is_ok (Sim.Checker.check o.Sched.Driver.schedule))

let prop_replicated_schedules_are_legal =
  QCheck.Test.make
    ~name:"every replicated schedule passes the checker" ~count:120 pair_arb
    (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      let tr, _ = Replication.Replicate.transform () in
      match Sched.Driver.schedule_loop ~transform:tr config g with
      | Error _ -> QCheck.assume_fail ()
      | Ok o -> Result.is_ok (Sim.Checker.check o.Sched.Driver.schedule))

let prop_replication_never_raises_ii =
  QCheck.Test.make ~name:"replication never raises the final II" ~count:100
    pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      let tr, _ = Replication.Replicate.transform () in
      match
        ( Sched.Driver.schedule_loop config g,
          Sched.Driver.schedule_loop ~transform:tr config g )
      with
      | Ok b, Ok r -> r.Sched.Driver.ii <= b.Sched.Driver.ii
      | _ -> QCheck.assume_fail ())

let prop_subgraph_removes_exactly_one_comm =
  QCheck.Test.make
    ~name:"replicating S_com removes exactly that communication" ~count:150
    pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      if config.Machine.Config.clusters = 1 then QCheck.assume_fail ()
      else begin
        let ii = Mii.mii config g in
        let assign = Sched.Partition.initial config g ~ii in
        let state = Replication.State.create config g ~assign in
        match Replication.State.comms state with
        | [] -> QCheck.assume_fail ()
        | com :: _ ->
            let before = Replication.State.comms state in
            let s = Replication.Subgraph.compute state com in
            List.iter
              (fun (v, cs) ->
                Replication.State.Iset.iter
                  (fun c ->
                    Replication.State.add_instance state ~node:v ~cluster:c)
                  cs)
              s.Replication.Subgraph.additions;
            List.iter
              (fun v ->
                Replication.State.remove_instance state ~node:v
                  ~cluster:(Replication.State.home state v))
              s.Replication.Subgraph.removable;
            let after = Replication.State.comms state in
            (not (List.mem com after))
            && List.sort compare after
               = List.sort compare (List.filter (fun v -> v <> com) before)
      end)

let prop_materialized_graph_consistent =
  QCheck.Test.make ~name:"materialization preserves communication count"
    ~count:120 pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      if config.Machine.Config.clusters = 1 then QCheck.assume_fail ()
      else begin
        let ii = Mii.mii config g in
        let assign = Sched.Partition.initial config g ~ii in
        match Replication.Replicate.run config g ~assign ~ii with
        | None -> QCheck.assume_fail ()
        | Some o ->
            let st = o.Replication.Replicate.stats in
            Sched.Comm.count o.Replication.Replicate.graph
              ~assign:o.Replication.Replicate.assign
            = st.Replication.Replicate.comms_before
              - st.Replication.Replicate.comms_removed
            && Array.length o.Replication.Replicate.assign
               = Graph.n_nodes o.Replication.Replicate.graph
      end)

let prop_lockstep_matches_analytic =
  QCheck.Test.make ~name:"simulated cycles equal (N-1+SC)*II" ~count:80
    pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      match Sched.Driver.schedule_loop config g with
      | Error _ -> QCheck.assume_fail ()
      | Ok o -> (
          let s = o.Sched.Driver.schedule in
          match Sim.Lockstep.run s ~iterations:37 with
          | Error _ -> false
          | Ok c ->
              c.Sim.Lockstep.cycles
              = Sched.Schedule.execution_cycles s ~iterations:37))

let prop_route_localizes_edges =
  QCheck.Test.make ~name:"routing leaves no cross-cluster value edge"
    ~count:150 pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      if config.Machine.Config.clusters = 1 then QCheck.assume_fail ()
      else begin
        let ii = Mii.mii config g in
        let assign = Sched.Partition.initial config g ~ii in
        let route = Sched.Route.build config g ~assign in
        let rg = route.Sched.Route.graph in
        List.for_all
          (fun e ->
            e.Graph.kind <> Graph.Reg
            || route.Sched.Route.assign.(e.Graph.src)
               = route.Sched.Route.assign.(e.Graph.dst)
            || Sched.Route.is_copy route e.Graph.src)
          (Graph.edges rg)
      end)

let prop_regalloc_verifies =
  QCheck.Test.make ~name:"allocations pass independent verification"
    ~count:80 pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      match Sched.Driver.schedule_loop config g with
      | Error _ -> QCheck.assume_fail ()
      | Ok o -> (
          match Sched.Regalloc.allocate o.Sched.Driver.schedule with
          | Error _ -> QCheck.assume_fail ()
          | Ok alloc ->
              Result.is_ok
                (Sched.Regalloc.verify o.Sched.Driver.schedule alloc)
              && Result.is_ok
                   (Sim.Regsim.run o.Sched.Driver.schedule alloc
                      ~iterations:20)))

let acyclic_of_seed seed =
  let g = graph_of_seed seed in
  let b = Graph.Builder.create () in
  List.iter
    (fun v -> ignore (Graph.Builder.add b (Graph.op g v)))
    (Graph.nodes g);
  List.iter
    (fun e ->
      if e.Graph.distance = 0 then
        match e.Graph.kind with
        | Graph.Reg ->
            Graph.Builder.depend b ~latency:e.Graph.latency ~src:e.Graph.src
              ~dst:e.Graph.dst
        | Graph.Mem ->
            Graph.Builder.mem_depend b ~src:e.Graph.src ~dst:e.Graph.dst)
    (Graph.edges g);
  Graph.Builder.build b

let prop_listsched_legal =
  QCheck.Test.make ~name:"acyclic schedules verify" ~count:120 pair_arb
    (fun (seed, ci) ->
      let g = acyclic_of_seed seed in
      let config = config_of_index ci in
      match Sched.Listsched.schedule_auto config g with
      | Error _ -> QCheck.assume_fail ()
      | Ok s -> Result.is_ok (Sched.Listsched.verify config s))

let prop_unroll_preserves_work =
  QCheck.Test.make ~name:"unrolling preserves per-result work" ~count:100
    seed_arb (fun seed ->
      let g = graph_of_seed seed in
      let g2 = Workload.Unroll.unroll g ~factor:3 in
      Graph.n_nodes g2 = 3 * Graph.n_nodes g
      && List.length (Graph.edges g2) = 3 * List.length (Graph.edges g))

let prop_spill_rewrite_shape =
  QCheck.Test.make ~name:"spill rewrites keep graph well-formed" ~count:60
    pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      match Sched.Driver.schedule_loop config g with
      | Error _ -> QCheck.assume_fail ()
      | Ok o -> (
          (* ask for a spill against a tiny register budget *)
          let tiny =
            Machine.Config.custom ~clusters:config.Machine.Config.clusters
              ~buses:(max 1 config.Machine.Config.buses)
              ~bus_latency:(max 1 config.Machine.Config.bus_latency)
              ~registers:config.Machine.Config.clusters
              ~fus_per_cluster:(4, 4, 4)
          in
          let assign =
            Array.sub
              o.Sched.Driver.schedule.Sched.Schedule.route.Sched.Route.assign
              0
              (Graph.n_nodes o.Sched.Driver.graph)
          in
          match
            Sched.Spill.rewrite tiny o.Sched.Driver.schedule
              ~graph:o.Sched.Driver.graph ~assign
          with
          | None -> QCheck.assume_fail ()
          | Some (g', assign') ->
              Graph.n_nodes g' = Graph.n_nodes o.Sched.Driver.graph + 2
              && Array.length assign' = Graph.n_nodes g'
              && List.length (Graph.edges g')
                 = List.length (Graph.edges o.Sched.Driver.graph) + 2))

let prop_spiller_never_raises_ii =
  QCheck.Test.make ~name:"the spiller never raises the final II" ~count:60
    pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      match
        ( Sched.Driver.schedule_loop config g,
          Sched.Driver.schedule_loop ~spiller:Sched.Spill.spiller config g )
      with
      | Ok plain, Ok spilled ->
          spilled.Sched.Driver.ii <= plain.Sched.Driver.ii
          && Result.is_ok (Sim.Checker.check spilled.Sched.Driver.schedule)
      | Error _, Ok spilled ->
          Result.is_ok (Sim.Checker.check spilled.Sched.Driver.schedule)
      | _ -> QCheck.assume_fail ())

(* The incremental subgraph cache must be observably identical to
   recomputing every candidate from scratch each greedy round: same
   subgraphs in the same order, same final replication state. *)
let canonical_subgraph (s : Replication.Subgraph.t) =
  ( s.Replication.Subgraph.com,
    s.Replication.Subgraph.members,
    List.map
      (fun (v, cs) -> (v, Replication.State.Iset.elements cs))
      s.Replication.Subgraph.additions,
    s.Replication.Subgraph.removable )

let prop_cached_select_matches_oracle =
  QCheck.Test.make
    ~name:"cached subgraph selection equals the recompute oracle" ~count:100
    pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      if config.Machine.Config.clusters = 1 then QCheck.assume_fail ()
      else begin
        let ii = Mii.mii config g in
        let assign = Sched.Partition.initial config g ~ii in
        let outcome heuristic cache =
          let state = Replication.State.create config g ~assign in
          let extra = Replication.State.extra_coms state ~ii in
          if extra = 0 then None
          else
            let picked =
              Replication.Replicate.select ~heuristic ~cache state ~ii ~extra
            in
            Some
              ( Option.map (List.map canonical_subgraph) picked,
                List.sort compare (Replication.State.comms state) )
        in
        let agree heuristic =
          match (outcome heuristic true, outcome heuristic false) with
          | None, None -> true
          | a, b -> a = b
        in
        match
          Replication.State.extra_coms
            (Replication.State.create config g ~assign)
            ~ii
        with
        | 0 -> QCheck.assume_fail ()
        | _ ->
            List.for_all agree
              [
                Replication.Replicate.Lowest_weight;
                Replication.Replicate.First_come;
                Replication.Replicate.Fewest_added;
              ]
      end)

(* The adjacency views precomputed by [Graph.Builder.build] must match
   their original filter-based definitions. *)
let prop_precomputed_adjacency =
  QCheck.Test.make ~name:"precomputed adjacency matches filtered edges"
    ~count:200 seed_arb (fun seed ->
      let g = graph_of_seed seed in
      let is_reg e = e.Graph.kind = Graph.Reg in
      List.for_all
        (fun v ->
          Graph.reg_succs g v = List.filter is_reg (Graph.succs g v)
          && Graph.reg_preds g v = List.filter is_reg (Graph.preds g v)
          && Graph.consumers g v
             = List.sort_uniq compare
                 (List.filter_map
                    (fun e -> if is_reg e then Some e.Graph.dst else None)
                    (Graph.succs g v))
          && Graph.value_producers g v
             = List.sort_uniq compare
                 (List.filter_map
                    (fun e -> if is_reg e then Some e.Graph.src else None)
                    (Graph.preds g v))
          && Graph.succ_ids g v
             = List.map (fun e -> e.Graph.dst) (Graph.succs g v)
          && Graph.pred_ids g v
             = List.map (fun e -> e.Graph.src) (Graph.preds g v))
        (Graph.nodes g))

let prop_generated_suite_schedulable =
  QCheck.Test.make ~name:"workload loops schedule on all paper configs"
    ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 677))
    (fun idx ->
      let loops = Workload.Generator.suite () in
      let l = List.nth loops idx in
      List.for_all
        (fun config ->
          match Sched.Driver.schedule_loop config l.Workload.Generator.graph with
          | Ok o -> Result.is_ok (Sim.Checker.check o.Sched.Driver.schedule)
          | Error _ -> false)
        Machine.Config.fig1_configs)

(* The O(1) circular-interval overlap test must agree with the
   definitional slot-by-slot scan over the II modulo slots. *)
let interval ~start_cycle ~end_cycle =
  {
    Sched.Regalloc.producer = 0;
    cluster = 0;
    start_cycle;
    end_cycle;
    instances = 1;
    registers = [];
  }

let slots_overlap_scan ii (a : Sched.Regalloc.interval)
    (b : Sched.Regalloc.interval) =
  let covered (itv : Sched.Regalloc.interval) =
    let s = Array.make ii false in
    for c = itv.Sched.Regalloc.start_cycle
        to itv.Sched.Regalloc.end_cycle - 1 do
      s.(c mod ii) <- true
    done;
    s
  in
  let sa = covered a and sb = covered b in
  let hit = ref false in
  for i = 0 to ii - 1 do
    if sa.(i) && sb.(i) then hit := true
  done;
  !hit

let prop_slots_overlap =
  QCheck.Test.make ~name:"O(1) slot overlap equals the slot scan" ~count:1000
    seed_arb (fun seed ->
      let rng = Workload.Rng.create seed in
      let ii = Workload.Rng.range rng 1 12 in
      let mk () =
        let s = Workload.Rng.int rng 50 in
        let len = 1 + Workload.Rng.int rng 40 in
        interval ~start_cycle:s ~end_cycle:(s + len)
      in
      let a = mk () in
      let b = mk () in
      Sched.Regalloc.slots_overlap ii a b = slots_overlap_scan ii a b)

(* ------------------------------------------------------------------ *)
(* Escalation-trace sweeps                                             *)
(* ------------------------------------------------------------------ *)

(* schedule_sweep answers a register family from one recorded trace; it
   must be observably identical to scheduling every member from scratch
   — same II, same cause attribution, same placement, same error text. *)
let canon_result = function
  | Ok (o : Sched.Driver.outcome) ->
      Ok
        ( o.Sched.Driver.mii,
          o.Sched.Driver.ii,
          List.sort compare o.Sched.Driver.increments,
          o.Sched.Driver.n_comms,
          Array.to_list o.Sched.Driver.assign,
          Array.to_list o.Sched.Driver.schedule.Sched.Schedule.cycles,
          Array.to_list o.Sched.Driver.schedule.Sched.Schedule.buses,
          Machine.Config.name o.Sched.Driver.schedule.Sched.Schedule.config )
  | Error e -> Error e

let reg_family ci =
  let clusters, buses, bus_latency =
    match ci mod 4 with
    | 0 -> (2, 1, 1)
    | 1 -> (4, 1, 2)
    | 2 -> (4, 2, 2)
    | _ -> (2, 1, 3)
  in
  List.map
    (fun registers ->
      Machine.Config.make ~clusters ~buses ~bus_latency ~registers)
    [ 16; 32; 64; 128 ]

let prop_sweep_matches_oracle =
  QCheck.Test.make
    ~name:"schedule_sweep equals independent schedule_loop calls" ~count:60
    pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let configs = reg_family ci in
      let swept = Sched.Driver.schedule_sweep configs g in
      List.for_all2
        (fun c (c', r) ->
          c == c'
          && canon_result r = canon_result (Sched.Driver.schedule_loop c g))
        configs swept)

let prop_sweep_replication_matches_oracle =
  QCheck.Test.make
    ~name:"replication sweeps equal independent replication runs" ~count:40
    pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let configs = reg_family ci in
      let tr, _ = Replication.Replicate.transform () in
      let swept = Sched.Driver.schedule_sweep ~transform:tr configs g in
      List.for_all2
        (fun c (_, r) ->
          let tr', _ = Replication.Replicate.transform () in
          canon_result r
          = canon_result (Sched.Driver.schedule_loop ~transform:tr' c g))
        configs swept)

let prop_sweep_spiller_matches_oracle =
  QCheck.Test.make
    ~name:"spiller sweeps equal independent spiller runs" ~count:40 pair_arb
    (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let configs = reg_family ci in
      let swept =
        Sched.Driver.schedule_sweep
          ~spiller_for:(fun _ -> Some Sched.Spill.spiller)
          configs g
      in
      List.for_all2
        (fun c (_, r) ->
          canon_result r
          = canon_result
              (Sched.Driver.schedule_loop ~spiller:Sched.Spill.spiller c g))
        configs swept)

(* ------------------------------------------------------------------ *)
(* Speculative escalation                                              *)
(* ------------------------------------------------------------------ *)

(* Speculation must be transparent: any window width on any executor
   returns byte-identical figures to the sequential walk.  Timeout
   errors carry a wall-clock field that legitimately differs between
   runs; everything else must match exactly. *)
let canon_result_no_clock r =
  match canon_result r with
  | Error (Sched.Sched_error.Timeout { at_ii; attempts; elapsed_s = _ }) ->
      Error (Sched.Sched_error.Timeout { at_ii; attempts; elapsed_s = 0. })
  | r -> r

let windows_and_jobs = [ (1, 1); (2, 1); (2, 2); (4, 1); (4, 2); (8, 2) ]

let prop_speculative_equals_sequential =
  QCheck.Test.make
    ~name:"speculative windows equal the sequential walk" ~count:40 pair_arb
    (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      let baseline = canon_result (Sched.Driver.schedule_loop config g) in
      List.for_all
        (fun (window, jobs) ->
          let exec = Metrics.Pool.exec ~jobs () in
          canon_result
            (Sched.Driver.schedule_loop ~window ~exec config g)
          = baseline)
        windows_and_jobs)

let prop_speculative_spiller_equals_sequential =
  QCheck.Test.make
    ~name:"speculative windows equal the sequential walk (spiller attached)"
    ~count:25 pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      let baseline =
        canon_result
          (Sched.Driver.schedule_loop ~spiller:Sched.Spill.spiller config g)
      in
      List.for_all
        (fun (window, jobs) ->
          let exec = Metrics.Pool.exec ~jobs () in
          canon_result
            (Sched.Driver.schedule_loop ~spiller:Sched.Spill.spiller ~window
               ~exec config g)
          = baseline)
        windows_and_jobs)

let prop_speculative_budget_equals_sequential =
  QCheck.Test.make
    ~name:"attempt-capped budgets time out identically at any window"
    ~count:25 pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      (* A tight attempt cap forces mid-walk expiry on escalating loops;
         the budget is spent in consume order, so the timeout must land
         on the same II level at every window. *)
      let run ?window ?exec () =
        let budget = Sched.Budget.make ~max_attempts:3 () in
        canon_result_no_clock
          (Sched.Driver.schedule_loop ~budget ?window ?exec config g)
      in
      let baseline = run () in
      List.for_all
        (fun (window, jobs) ->
          let exec = Metrics.Pool.exec ~jobs () in
          run ~window ~exec () = baseline)
        windows_and_jobs)

let prop_shared_hierarchy_equals_fresh =
  QCheck.Test.make
    ~name:"a shared partition hierarchy changes nothing but the work"
    ~count:40 pair_arb (fun (seed, ci) ->
      let g = graph_of_seed seed in
      let config = config_of_index ci in
      let hier = Sched.Driver.hierarchy config g in
      let tr_shared, _ = Replication.Replicate.transform () in
      let tr_fresh, _ = Replication.Replicate.transform () in
      canon_result (Sched.Driver.schedule_loop ~hier config g)
      = canon_result (Sched.Driver.schedule_loop config g)
      && canon_result
           (Sched.Driver.schedule_loop ~transform:tr_shared ~hier config g)
         = canon_result
             (Sched.Driver.schedule_loop ~transform:tr_fresh config g))

(* ------------------------------------------------------------------ *)
(* Modulo reservation table bitset rows                                *)
(* ------------------------------------------------------------------ *)

(* The MRT answers availability probes from bitset occupancy rows; a
   shadow model answering the same probes by definitional slot counting
   must never disagree, across random interleavings of reservations. *)
let prop_mrt_bitset_matches_scan =
  QCheck.Test.make ~name:"MRT bitset occupancy equals the slot-count scan"
    ~count:300 seed_arb (fun seed ->
      let rng = Workload.Rng.create seed in
      let config =
        config_of_index (Workload.Rng.int rng (List.length configs))
      in
      let ii = Workload.Rng.range rng 1 9 in
      let mrt = Sched.Mrt.create config ~ii in
      let clusters = config.Machine.Config.clusters in
      let lat = max 1 config.Machine.Config.bus_latency in
      (* Shadow: per-slot busy counts, definitional arithmetic only. *)
      let fu_busy =
        Array.init clusters (fun _ ->
            Array.init Machine.Fu.count (fun _ -> Array.make ii 0))
      in
      let bus_busy =
        Array.init config.Machine.Config.buses (fun _ -> Array.make ii false)
      in
      let slot cycle =
        let m = cycle mod ii in
        if m < 0 then m + ii else m
      in
      let scan_fu ~cluster ~kind ~cycle =
        fu_busy.(cluster).(Machine.Fu.index kind).(slot cycle)
        < Machine.Config.fus config ~cluster kind
      in
      let scan_bus ~bus ~cycle =
        lat <= ii
        && List.for_all
             (fun k -> not bus_busy.(bus).(slot (cycle + k)))
             (List.init lat Fun.id)
      in
      let scan_find_bus ~cycle =
        let rec go b =
          if b >= config.Machine.Config.buses then None
          else if scan_bus ~bus:b ~cycle then Some b
          else go (b + 1)
        in
        go 0
      in
      let steps = 40 in
      let ok = ref true in
      for _ = 1 to steps do
        let cycle = Workload.Rng.int rng 60 - 20 in
        if Workload.Rng.chance rng 0.7 then begin
          let cluster = Workload.Rng.int rng clusters in
          let kind =
            List.nth Machine.Fu.all
              (Workload.Rng.int rng (List.length Machine.Fu.all))
          in
          let avail = Sched.Mrt.fu_available mrt ~cluster ~kind ~cycle in
          if avail <> scan_fu ~cluster ~kind ~cycle then ok := false;
          if avail then begin
            Sched.Mrt.reserve_fu mrt ~cluster ~kind ~cycle;
            let s = slot cycle in
            let k = Machine.Fu.index kind in
            fu_busy.(cluster).(k).(s) <- fu_busy.(cluster).(k).(s) + 1
          end
        end
        else begin
          let found = Sched.Mrt.find_bus mrt ~cycle in
          if found <> scan_find_bus ~cycle then ok := false;
          match found with
          | Some bus ->
              Sched.Mrt.reserve_bus mrt ~bus ~cycle;
              for k = 0 to lat - 1 do
                bus_busy.(bus).(slot (cycle + k)) <- true
              done
          | None -> ()
        end
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mii_boundary;
      prop_analysis_windows;
      prop_scc_partition;
      prop_ordering_is_permutation;
      prop_partition_valid;
      prop_schedules_are_legal;
      prop_replicated_schedules_are_legal;
      prop_replication_never_raises_ii;
      prop_subgraph_removes_exactly_one_comm;
      prop_materialized_graph_consistent;
      prop_lockstep_matches_analytic;
      prop_route_localizes_edges;
      prop_regalloc_verifies;
      prop_listsched_legal;
      prop_unroll_preserves_work;
      prop_spill_rewrite_shape;
      prop_spiller_never_raises_ii;
      prop_cached_select_matches_oracle;
      prop_precomputed_adjacency;
      prop_generated_suite_schedulable;
      prop_slots_overlap;
      prop_sweep_matches_oracle;
      prop_sweep_replication_matches_oracle;
      prop_sweep_spiller_matches_oracle;
      prop_speculative_equals_sequential;
      prop_speculative_spiller_equals_sequential;
      prop_speculative_budget_equals_sequential;
      prop_shared_hierarchy_equals_fresh;
      prop_mrt_bitset_matches_scan;
    ]
