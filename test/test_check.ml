(* The independent oracle (Check.Validate) and the fuzzer (Check.Fuzz).

   Calibration: the oracle must accept every schedule the real pipeline
   emits and reject all eight catalog corruptions (Sim.Faults), each
   with its own named rule — two checkers built from disjoint code
   agreeing on both sides of the line. *)

open Alcotest

let failf fmt = Alcotest.failf fmt
let config4c = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64
let config2c = Machine.Config.make ~clusters:2 ~buses:2 ~bus_latency:4 ~registers:64

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let loops =
  lazy (take 6 (Workload.Generator.generate (Workload.Benchmark.find "tomcatv")))

let schedules_of config mode =
  List.filter_map
    (fun l ->
      match Metrics.Experiment.run_loop mode config l with
      | Ok r -> Some (l, r.Metrics.Experiment.outcome.Sched.Driver.schedule)
      | Error e when Metrics.Experiment.error_is_bug e ->
          failf "bug scheduling %s: %s" l.Workload.Generator.id
            (Sched.Sched_error.to_string e)
      | Error _ -> None)
    (Lazy.force loops)

let test_accepts_real_schedules () =
  let checked = ref 0 in
  List.iter
    (fun config ->
      List.iter
        (fun mode ->
          List.iter
            (fun ((l : Workload.Generator.loop), sched) ->
              incr checked;
              match Check.Validate.run ~original:l.graph sched with
              | Ok () -> ()
              | Error issues ->
                  failf "oracle rejected %s (%s): %s" l.id
                    (Metrics.Experiment.mode_tag mode)
                    (String.concat "; " (Check.Validate.to_strings issues)))
            (schedules_of config mode))
        [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ])
    [ config4c; config2c ];
  check bool "validated a real sample" true (!checked >= 12)

let test_accepts_latency0 () =
  (* registers:false mirrors the pipeline's own contract: the
     Section-5.1 upper bound schedules against zero-latency arrival, so
     register pressure is not enforced on it (Experiment passes
     ~registers:(not latency0) to the checker for the same reason). *)
  List.iter
    (fun ((l : Workload.Generator.loop), sched) ->
      match
        Check.Validate.run ~latency0:true ~registers:false ~original:l.graph
          sched
      with
      | Ok () -> ()
      | Error issues ->
          failf "oracle rejected latency-0 %s: %s" l.id
            (String.concat "; " (Check.Validate.to_strings issues)))
    (schedules_of config4c Metrics.Experiment.Replication_latency0)

(* Every catalog corruption must be rejected, and the diagnosis must
   include the injection's own rule — eight corruptions, eight distinct
   rules (the catalog declares the mapping in [v_rule]). *)
let test_fault_calibration () =
  let seen = Hashtbl.create 8 in
  let pool =
    schedules_of config4c Metrics.Experiment.Replication
    @ schedules_of config4c Metrics.Experiment.Baseline
  in
  List.iter
    (fun (inj : Sim.Faults.injection) ->
      List.iter
        (fun ((l : Workload.Generator.loop), sched) ->
          if not (Hashtbl.mem seen inj.name) then
            match inj.apply sched with
            | None -> ()
            | Some bad -> (
                match Check.Validate.run bad with
                | Ok () ->
                    failf "oracle missed %s on %s" inj.name l.id
                | Error issues ->
                    let rules = Check.Validate.distinct_rules issues in
                    if not (List.mem inj.v_rule rules) then
                      failf "%s on %s: oracle reported [%s], wanted rule %s"
                        inj.name l.id (String.concat "; " rules) inj.v_rule;
                    Hashtbl.replace seen inj.name inj.v_rule))
        pool)
    Sim.Faults.catalog;
  List.iter
    (fun (inj : Sim.Faults.injection) ->
      if not (Hashtbl.mem seen inj.name) then
        failf "corruption %s never applied — no schedule had the ingredient"
          inj.name)
    Sim.Faults.catalog;
  (* the declared rules are pairwise distinct: distinct diagnoses *)
  let rules = List.map (fun (i : Sim.Faults.injection) -> i.v_rule) Sim.Faults.catalog in
  check int "eight distinct diagnoses" (List.length rules)
    (List.length (List.sort_uniq compare rules));
  (* and every declared rule is one the oracle documents *)
  List.iter
    (fun r ->
      check bool (r ^ " is a documented rule") true
        (List.mem r Check.Validate.rules))
    rules

let test_rejects_handmade_corruption () =
  match schedules_of config4c Metrics.Experiment.Baseline with
  | [] -> failf "no baseline schedule"
  | (_, sched) :: _ -> (
      let bad =
        {
          sched with
          Sched.Schedule.cycles = Array.copy sched.Sched.Schedule.cycles;
        }
      in
      bad.Sched.Schedule.cycles.(0) <- -7;
      match Check.Validate.run bad with
      | Ok () -> failf "oracle accepted a node without an issue cycle"
      | Error issues ->
          check bool "issue-cycle named" true
            (List.mem "issue-cycle" (Check.Validate.distinct_rules issues)))

(* ------------------------------------------------------------------ *)
(* Fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let test_fuzz_deterministic () =
  let s1 = Check.Fuzz.run ~iters:25 ~seed:7 () in
  let s2 = Check.Fuzz.run ~iters:25 ~seed:7 () in
  check (list string) "identical summaries"
    (Check.Fuzz.summary_lines s1) (Check.Fuzz.summary_lines s2);
  check int "all cases accounted" 25
    (s1.scheduled
    + List.fold_left (fun a (_, n) -> a + n) 0 s1.gave_up
    + List.length s1.failures)

let test_fuzz_clean_on_real_pipeline () =
  let s = Check.Fuzz.run ~iters:40 ~seed:3 () in
  check (list string) "no failures" []
    (List.map (fun (f : Check.Fuzz.failure) -> f.f_rule) s.failures)

let test_corpus_roundtrip () =
  let path = Filename.temp_file "corpus" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let failures =
    [
      {
        Check.Fuzz.f_seed = 123;
        f_nodes = 9;
        f_config = "4c1b2l64r";
        f_mode = "repl";
        f_rule = "bus-conflict";
        f_detail = "bus 0 slot 1 carries cp_A+cp_B";
        f_gen = Workload.Generator.version;
      };
      {
        Check.Fuzz.f_seed = 77;
        f_nodes = 4;
        f_config = "unified64r";
        f_mode = "base";
        f_rule = "sim";
        f_detail = "operand of \"X\" not ready";
        f_gen = Workload.Generator.version;
      };
    ]
  in
  Check.Fuzz.write_corpus ~path failures;
  match Check.Fuzz.read_corpus ~path with
  | Error msg -> failf "read back: %s" msg
  | Ok fs ->
      check int "two records" 2 (List.length fs);
      if fs <> failures then failf "corpus round trip changed the records"

let test_stale_corpus_self_invalidates () =
  (* entries recorded under another generator version — or none at all,
     as pre-tag corpora read back — must be flagged stale and skipped by
     replay rather than re-run against loops they no longer denote *)
  let path = Filename.temp_file "corpus" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let fresh =
    {
      Check.Fuzz.f_seed = 123;
      f_nodes = 9;
      f_config = "4c1b2l64r";
      f_mode = "repl";
      f_rule = "bus-conflict";
      f_detail = "current";
      f_gen = Workload.Generator.version;
    }
  in
  let old = { fresh with Check.Fuzz.f_seed = 77; f_gen = "gen-0" } in
  check bool "current version is fresh" false (Check.Fuzz.stale fresh);
  check bool "other version is stale" true (Check.Fuzz.stale old);
  Check.Fuzz.write_corpus ~path [ fresh; old ];
  (* a legacy line with no gen field at all *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc
    "{\"seed\": 55, \"nodes\": 6, \"config\": \"unified64r\", \"mode\": \
     \"base\", \"rule\": \"sim\", \"detail\": \"legacy\"}\n";
  close_out oc;
  match Check.Fuzz.replay ~corpus:path with
  | [ (f1, v1); (f2, v2); (f3, v3) ] ->
      check int "fresh entry kept its seed" 123 f1.Check.Fuzz.f_seed;
      check bool "fresh entry was replayed" true (v1 <> None);
      check int "stale entry kept its seed" 77 f2.Check.Fuzz.f_seed;
      check bool "stale entry was not replayed" true (v2 = None);
      check bool "legacy entry reads back stale" true (Check.Fuzz.stale f3);
      check bool "legacy entry was not replayed" true (v3 = None)
  | rs -> failf "expected 3 replay results, got %d" (List.length rs)

let test_case_regeneration_stable () =
  (* a recorded (seed, nodes) pair regenerates the identical case:
     the replay workflow depends on it *)
  List.iter
    (fun seed ->
      let l1, c1, m1 = Check.Fuzz.case_of_seed ~seed ~nodes:10 in
      let l2, c2, m2 = Check.Fuzz.case_of_seed ~seed ~nodes:10 in
      check string "same config" (Machine.Config.name c1) (Machine.Config.name c2);
      check string "same mode" m1 m2;
      check int "same body size"
        (Ddg.Graph.n_nodes l1.Workload.Generator.graph)
        (Ddg.Graph.n_nodes l2.Workload.Generator.graph))
    [ 1; 42; 999999 ]

let suite =
  [
    test_case "oracle accepts real schedules (2 configs x 2 modes)" `Quick
      test_accepts_real_schedules;
    test_case "oracle accepts latency-0 schedules" `Quick test_accepts_latency0;
    test_case "oracle rejects all 8 corruptions, distinct rules" `Quick
      test_fault_calibration;
    test_case "oracle rejects handmade corruption" `Quick
      test_rejects_handmade_corruption;
    test_case "fuzz is deterministic" `Quick test_fuzz_deterministic;
    test_case "fuzz finds no failures in the real pipeline" `Quick
      test_fuzz_clean_on_real_pipeline;
    test_case "corpus write/read round trip" `Quick test_corpus_roundtrip;
    test_case "stale corpus self-invalidates" `Quick
      test_stale_corpus_self_invalidates;
    test_case "case regeneration is stable" `Quick
      test_case_regeneration_stable;
  ]
