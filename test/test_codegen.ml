(* Code emission. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let contains sub s =
  let ls = String.length sub and le = String.length s in
  let rec go i = i + ls <= le && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let config4c = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64

let schedule config g =
  match Sched.Driver.schedule_loop config g with
  | Ok o -> o.Sched.Driver.schedule
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)

let test_kernel_symbolic () =
  let s = schedule config4c (Ddg.Examples.figure3 ()) in
  let text = Sim.Codegen.kernel s in
  check bool "has labels" true (contains "L0:" text);
  check bool "mentions every node" true
    (List.for_all
       (fun v ->
         contains (Ddg.Graph.label s.Sched.Schedule.route.Sched.Route.graph v)
           text)
       (Ddg.Graph.nodes s.Sched.Schedule.route.Sched.Route.graph));
  (* the figure3 schedule on 4 clusters needs the bus *)
  if Sched.Route.n_copies s.Sched.Schedule.route > 0 then
    check bool "bus transfers shown" true (contains "copy.bus" text)

let test_kernel_with_registers () =
  let s = schedule config4c (Ddg.Examples.figure3 ()) in
  let alloc = Sched.Regalloc.allocate_exn s in
  let text = Sim.Codegen.kernel ~alloc s in
  check bool "register operands" true (contains "r0" text);
  check bool "assignment arrows" true (contains "<- " text)

let test_pipeline_phases () =
  let s = schedule config4c (Ddg.Examples.tiny_chain ~n:6 ()) in
  let text = Sim.Codegen.pipeline s ~iterations:6 in
  check bool "prologue" true (contains "[prologue]" text);
  check bool "kernel" true (contains "[kernel" text);
  (* count issue lines: every dynamic op appears exactly once *)
  let issues =
    String.split_on_char '\n' text
    |> List.concat_map (fun l -> String.split_on_char '[' l)
    |> List.filter (fun tok -> contains "]@c" ("[" ^ tok))
  in
  (* every dynamic op (copies included) appears exactly once *)
  check int "dynamic ops"
    (6 * Ddg.Graph.n_nodes s.Sched.Schedule.route.Sched.Route.graph)
    (List.length issues)

let test_pipeline_guards () =
  let s = schedule config4c (Ddg.Examples.tiny_chain ~n:3 ()) in
  check bool "rejects zero iterations" true
    (try ignore (Sim.Codegen.pipeline s ~iterations:0); false
     with Invalid_argument _ -> true);
  check bool "rejects huge traces" true
    (try ignore (Sim.Codegen.pipeline s ~iterations:1_000_000); false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "kernel symbolic" `Quick test_kernel_symbolic;
    Alcotest.test_case "kernel with registers" `Quick
      test_kernel_with_registers;
    Alcotest.test_case "pipeline phases" `Quick test_pipeline_phases;
    Alcotest.test_case "pipeline guards" `Quick test_pipeline_guards;
  ]
