(* DDG construction, accessors, validation, MII, analysis, SCCs. *)

open Ddg

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk_simple () =
  (* ld -> add -> st, plus an induction. *)
  let b = Graph.Builder.create ~name:"simple" () in
  let ld = Graph.Builder.add b ~label:"ld" Machine.Opclass.Load in
  let add = Graph.Builder.add b ~label:"add" Machine.Opclass.Fp_arith in
  let st = Graph.Builder.add b ~label:"st" Machine.Opclass.Store in
  let iv = Graph.Builder.add b ~label:"iv" Machine.Opclass.Int_arith in
  Graph.Builder.depend b ~src:ld ~dst:add;
  Graph.Builder.depend b ~src:add ~dst:st;
  Graph.Builder.depend b ~src:iv ~dst:ld;
  Graph.Builder.depend b ~distance:1 ~src:iv ~dst:iv;
  (Graph.Builder.build b, ld, add, st, iv)

let test_builder_basics () =
  let g, ld, add, st, iv = mk_simple () in
  check int "nodes" 4 (Graph.n_nodes g);
  check int "edges" 4 (List.length (Graph.edges g));
  check bool "op" true (Graph.op g ld = Machine.Opclass.Load);
  check bool "store" true (Graph.is_store g st);
  check int "find_label" add (Graph.find_label g "add");
  check bool "missing label" true
    (try ignore (Graph.find_label g "zzz"); false with Not_found -> true);
  check (Alcotest.list int) "consumers of ld" [ add ] (Graph.consumers g ld);
  check (Alcotest.list int) "producers of add" [ ld ]
    (Graph.value_producers g add);
  check (Alcotest.list int) "self consumer" (List.sort compare [ iv; ld ])
    (List.sort compare (Graph.consumers g iv))

let test_edge_latency_from_table1 () =
  let g, ld, _, _, _ = mk_simple () in
  let e = List.hd (Graph.reg_succs g ld) in
  check int "load latency" 2 e.Graph.latency

let test_latency_override () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add b Machine.Opclass.Int_arith in
  let c = Graph.Builder.add b Machine.Opclass.Int_arith in
  Graph.Builder.depend b ~latency:7 ~src:a ~dst:c;
  let g = Graph.Builder.build b in
  check int "override" 7 (List.hd (Graph.edges g)).Graph.latency

let test_builder_rejects () =
  let b = Graph.Builder.create () in
  let st = Graph.Builder.add b Machine.Opclass.Store in
  let x = Graph.Builder.add b Machine.Opclass.Int_arith in
  let bad f = try f (); false with Invalid_argument _ -> true in
  check bool "store produces no value" true
    (bad (fun () -> Graph.Builder.depend b ~src:st ~dst:x));
  check bool "unknown node" true
    (bad (fun () -> Graph.Builder.depend b ~src:9 ~dst:x));
  check bool "negative distance" true
    (bad (fun () -> Graph.Builder.depend b ~distance:(-1) ~src:x ~dst:x));
  check bool "mem dep needs memory ops" true
    (bad (fun () -> Graph.Builder.mem_depend b ~src:x ~dst:st))

let test_zero_distance_cycle_rejected () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add b Machine.Opclass.Int_arith in
  let y = Graph.Builder.add b Machine.Opclass.Int_arith in
  Graph.Builder.depend b ~src:x ~dst:y;
  Graph.Builder.depend b ~src:y ~dst:x;
  check bool "cycle rejected" true
    (try ignore (Graph.Builder.build b); false
     with Invalid_argument _ -> true)

let test_loop_carried_cycle_allowed () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add b Machine.Opclass.Int_arith in
  let y = Graph.Builder.add b Machine.Opclass.Int_arith in
  Graph.Builder.depend b ~src:x ~dst:y;
  Graph.Builder.depend b ~distance:1 ~src:y ~dst:x;
  check int "built" 2 (Graph.n_nodes (Graph.Builder.build b))

let test_ops_of_kind () =
  let g, _, _, _, _ = mk_simple () in
  check int "mem ops" 2 (Graph.n_ops_of_kind g Machine.Fu.Mem);
  check int "fp ops" 1 (Graph.n_ops_of_kind g Machine.Fu.Fp);
  check int "int ops" 1 (Graph.n_ops_of_kind g Machine.Fu.Int)

let test_dot_export () =
  let g, _, _, _, _ = mk_simple () in
  let dot = Graph.to_dot g in
  check bool "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  (* dashed loop-carried edge rendered *)
  let contains sub s =
    let ls = String.length sub and le = String.length s in
    let rec go i = i + ls <= le && (String.sub s i ls = sub || go (i + 1)) in
    go 0
  in
  check bool "dashed" true (contains "dashed" dot)

let test_figure3_shape () =
  let g = Examples.figure3 () in
  check int "14 nodes" 14 (Graph.n_nodes g);
  let assign = Examples.figure3_partition g in
  (* The exact communications of the paper's example. *)
  let coms =
    Sched.Comm.producers g ~assign |> List.map (Graph.label g)
  in
  check (Alcotest.list Alcotest.string) "comms D E J" [ "D"; "E"; "J" ] coms

(* ---------------- canonical fingerprints (Fingerprint) ------------- *)

(* Rebuild [g] with node ids renumbered by [perm] (perm.(old) = new). *)
let permuted g perm =
  let n = Graph.n_nodes g in
  let inv = Array.make n 0 in
  Array.iteri (fun old_id new_id -> inv.(new_id) <- old_id) perm;
  let b = Graph.Builder.create ~name:(Graph.name g) () in
  Array.iter
    (fun old_id ->
      ignore
        (Graph.Builder.add b ~label:(Graph.label g old_id)
           (Graph.op g old_id)))
    inv;
  List.iter
    (fun (e : Graph.edge) ->
      let src = perm.(e.Graph.src) and dst = perm.(e.Graph.dst) in
      match e.Graph.kind with
      | Graph.Mem ->
          Graph.Builder.mem_depend b ~distance:e.Graph.distance ~src ~dst
      | Graph.Reg ->
          Graph.Builder.depend b ~latency:e.Graph.latency
            ~distance:e.Graph.distance ~src ~dst)
    (Graph.edges g);
  Graph.Builder.build b

let shuffle_perm rng n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Workload.Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* Rebuild [g] node-for-node, transforming each edge with [edge]. *)
let rebuilt g ~edge =
  let b = Graph.Builder.create () in
  List.iter
    (fun v -> ignore (Graph.Builder.add b (Graph.op g v)))
    (Graph.nodes g);
  List.iteri
    (fun i (e : Graph.edge) ->
      let e = edge i e in
      match e.Graph.kind with
      | Graph.Mem ->
          Graph.Builder.mem_depend b ~distance:e.Graph.distance ~src:e.Graph.src
            ~dst:e.Graph.dst
      | Graph.Reg ->
          Graph.Builder.depend b ~latency:e.Graph.latency
            ~distance:e.Graph.distance ~src:e.Graph.src ~dst:e.Graph.dst)
    (Graph.edges g);
  Graph.Builder.build b

let test_fingerprint_permutation_invariant () =
  let rng = Workload.Rng.create 0xf19e5 in
  for seed = 0 to 19 do
    let g =
      (Workload.Generator.random ~seed ()).Workload.Generator.graph
    in
    let n = Graph.n_nodes g in
    let fp = Fingerprint.canonical g in
    let rev = Array.init n (fun i -> n - 1 - i) in
    List.iter
      (fun perm ->
        check bool "renumbering keeps the fingerprint" true
          (String.equal fp (Fingerprint.canonical (permuted g perm))))
      [ rev; shuffle_perm rng n ]
  done

let test_fingerprint_discriminates () =
  let corpus =
    List.init 40 (fun seed ->
        (Workload.Generator.random ~seed ()).Workload.Generator.graph)
  in
  (* Soundness (the direction the schedule store relies on): graphs
     with equal structural encodings must fingerprint identically. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if
            String.equal
              (Graph.structural_encoding a)
              (Graph.structural_encoding b)
          then
            check bool "equal structure, equal fingerprint" true
              (String.equal (Fingerprint.canonical a)
                 (Fingerprint.canonical b)))
        corpus)
    corpus;
  (* Discrimination sanity: the fuzz corpus should not pile up on a few
     fingerprint buckets. *)
  let distinct = Hashtbl.create 64 in
  List.iter
    (fun g -> Hashtbl.replace distinct (Fingerprint.canonical g) ())
    corpus;
  check bool "fuzz corpus spreads over fingerprints" true
    (Hashtbl.length distinct >= 35);
  List.iter
    (fun g ->
      check bool "deep equality is reflexive" true
        (Fingerprint.equal_structure g g))
    corpus

let test_fingerprint_sensitive () =
  let g = (Workload.Generator.random ~seed:7 ()).Workload.Generator.graph in
  let fp = Fingerprint.canonical g in
  check bool "identity rebuild round-trips" true
    (String.equal fp (Fingerprint.canonical (rebuilt g ~edge:(fun _ e -> e))));
  (* Find a register edge to perturb (every generated loop has one). *)
  let victim =
    let rec first i = function
      | [] -> -1
      | (e : Graph.edge) :: tl ->
          if e.Graph.kind = Graph.Reg then i else first (i + 1) tl
    in
    first 0 (Graph.edges g)
  in
  check bool "corpus loop has a register edge" true (victim >= 0);
  let bump_latency i (e : Graph.edge) =
    if i = victim then { e with Graph.latency = e.Graph.latency + 1 } else e
  in
  let bump_distance i (e : Graph.edge) =
    if i = victim then { e with Graph.distance = e.Graph.distance + 1 } else e
  in
  check bool "latency change changes the fingerprint" false
    (String.equal fp (Fingerprint.canonical (rebuilt g ~edge:bump_latency)));
  check bool "distance change changes the fingerprint" false
    (String.equal fp (Fingerprint.canonical (rebuilt g ~edge:bump_distance)));
  let empty = Graph.Builder.build (Graph.Builder.create ()) in
  check bool "empty graph is stable" true
    (String.equal (Fingerprint.canonical empty) (Fingerprint.canonical empty));
  check bool "empty differs from non-empty" false
    (String.equal fp (Fingerprint.canonical empty))

let suite =
  [
    Alcotest.test_case "builder basics" `Quick test_builder_basics;
    Alcotest.test_case "edge latency from Table 1" `Quick
      test_edge_latency_from_table1;
    Alcotest.test_case "latency override" `Quick test_latency_override;
    Alcotest.test_case "builder rejects" `Quick test_builder_rejects;
    Alcotest.test_case "zero-distance cycle rejected" `Quick
      test_zero_distance_cycle_rejected;
    Alcotest.test_case "loop-carried cycle allowed" `Quick
      test_loop_carried_cycle_allowed;
    Alcotest.test_case "ops of kind" `Quick test_ops_of_kind;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "figure3 shape" `Quick test_figure3_shape;
    Alcotest.test_case "fingerprint permutation invariance" `Quick
      test_fingerprint_permutation_invariant;
    Alcotest.test_case "fingerprint discrimination" `Quick
      test_fingerprint_discriminates;
    Alcotest.test_case "fingerprint sensitivity" `Quick
      test_fingerprint_sensitive;
  ]
