(* The Figure-2 driver: escalation, attribution, hooks. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let config4c = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64
let unified = Machine.Config.unified ~registers:64

let test_max_ii_cap () =
  let g = Ddg.Examples.figure3 () in
  (* an impossible cap forces the error path *)
  match Sched.Driver.schedule_loop ~max_ii:0 config4c g with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error (Sched.Sched_error.Infeasible_partition { mii; cap }) ->
      check bool "cap below MII" true (cap < mii)
  | Error e ->
      Alcotest.failf "unexpected error class: %s"
        (Sched.Sched_error.class_name e)

let test_identity_transform_is_baseline () =
  let g = Ddg.Examples.figure3 () in
  let identity _config _g ~assign:_ ~ii:_ = None in
  let a = Result.get_ok (Sched.Driver.schedule_loop config4c g) in
  let b =
    Result.get_ok (Sched.Driver.schedule_loop ~transform:identity config4c g)
  in
  check int "same ii" a.Sched.Driver.ii b.Sched.Driver.ii;
  check int "same comms" a.Sched.Driver.n_comms b.Sched.Driver.n_comms

let test_unified_has_no_comms () =
  List.iter
    (fun g ->
      let o = Result.get_ok (Sched.Driver.schedule_loop unified g) in
      check int "no comms" 0 o.Sched.Driver.n_comms;
      check int "ii at mii" o.Sched.Driver.mii o.Sched.Driver.ii)
    [ Ddg.Examples.tiny_chain ~n:8 (); Ddg.Examples.with_recurrence () ]

let test_latency0_never_longer_at_same_ii () =
  let loops =
    Workload.Generator.generate (Workload.Benchmark.find "turb3d")
  in
  let rec take k = function
    | [] -> [] | _ when k = 0 -> [] | x :: tl -> x :: take (k - 1) tl
  in
  List.iter
    (fun (l : Workload.Generator.loop) ->
      match Sched.Driver.schedule_loop config4c l.graph with
      | Error _ -> ()
      | Ok o -> (
          (* reschedule the same graph/partition with zero-latency buses
             at the same II: the length cannot grow *)
          let route =
            Sched.Route.build ~latency0:true config4c o.Sched.Driver.graph
              ~assign:o.Sched.Driver.assign
          in
          match
            Sched.Place.try_schedule config4c route ~ii:o.Sched.Driver.ii
          with
          | Error _ -> () (* placement is heuristic; skipping is fine *)
          | Ok s ->
              check bool
                (Printf.sprintf "%s length" l.id)
                true
                (Sched.Schedule.length s
                <= Sched.Schedule.length o.Sched.Driver.schedule + 1)))
    (take 8 loops)

let test_transform_sees_current_partition () =
  let g = Ddg.Examples.figure3 () in
  let calls = ref [] in
  let spy config g' ~assign ~ii =
    ignore config;
    ignore g';
    check int "assign covers graph" (Ddg.Graph.n_nodes g)
      (Array.length assign);
    calls := ii :: !calls;
    None
  in
  ignore (Sched.Driver.schedule_loop ~transform:spy config4c g);
  check bool "called at least once" true (!calls <> []);
  check bool "iis non-decreasing from mii" true
    (List.for_all (fun ii -> ii >= Ddg.Mii.mii config4c g) !calls)

let test_increments_never_negative () =
  List.iter
    (fun (l : Workload.Generator.loop) ->
      match Sched.Driver.schedule_loop config4c l.graph with
      | Error _ -> ()
      | Ok o ->
          List.iter
            (fun (_, n) -> check bool "non-negative" true (n >= 0))
            o.Sched.Driver.increments)
    (Workload.Generator.generate (Workload.Benchmark.find "mgrid"))

let suite =
  [
    Alcotest.test_case "max ii cap" `Quick test_max_ii_cap;
    Alcotest.test_case "identity transform is baseline" `Quick
      test_identity_transform_is_baseline;
    Alcotest.test_case "unified has no comms" `Quick
      test_unified_has_no_comms;
    Alcotest.test_case "latency0 never longer at same ii" `Quick
      test_latency0_never_longer_at_same_ii;
    Alcotest.test_case "transform sees current partition" `Quick
      test_transform_sees_current_partition;
    Alcotest.test_case "increments never negative" `Quick
      test_increments_never_negative;
  ]
