(* Differential tests for the exact SAT backend (Sched.Exact): on small
   loops the oracle must never do worse than the heuristic driver, every
   decoded witness must survive the two independent checkers
   (Check.Validate and the lockstep simulator), and its optimality
   claims must withstand two refutation probes — the heuristic schedule
   planted as a witness at its own II (so `Unsat there indicts the
   encoder, not the loop), and the exact witness squeezed to II-1, which
   Validate must reject wherever the UNSAT certificate at II-1 was
   honest. *)

open Ddg

(* Best heuristic outcome over the baseline and replication drivers —
   the "heuristic II" the gap report compares against. *)
let heuristic config g =
  let base = Sched.Driver.schedule_loop config g in
  let tf, _ = Replication.Replicate.transform () in
  let repl = Sched.Driver.schedule_loop ~transform:tf config g in
  match (base, repl) with
  | Ok a, Ok b -> Some (if b.Sched.Driver.ii <= a.Sched.Driver.ii then b else a)
  | Ok a, Error _ -> Some a
  | Error _, Ok b -> Some b
  | Error _, Error _ -> None

let check_witness ~name ~original (s : Sched.Schedule.t) ~ii =
  Alcotest.(check int) (name ^ ": witness II") ii s.Sched.Schedule.ii;
  (match Check.Validate.run ~original s with
  | Ok () -> ()
  | Error issues ->
      Alcotest.failf "%s: exact witness rejected by Validate: %s" name
        (String.concat "; " (Check.Validate.to_strings issues)));
  let iterations = 4 in
  match
    Sim.Lockstep.run
      ~useful_per_iteration:(Graph.n_nodes original)
      s ~iterations
  with
  | Error msg ->
      Alcotest.failf "%s: lockstep rejected exact witness: %s" name msg
  | Ok counts ->
      Alcotest.(check int)
        (name ^ ": lockstep cycles match the claimed II")
        (Sched.Schedule.execution_cycles s ~iterations)
        counts.Sim.Lockstep.cycles

(* One full differential case.  Returns [true] when conclusive: the
   heuristic scheduled the loop and the oracle reached a verdict. *)
let check_case ~name config g =
  match heuristic config g with
  | None -> false
  | Some o -> (
      let heur_ii = o.Sched.Driver.ii in
      (* a horizon past the heuristic schedule keeps its witness inside
         the search space, so `Unsat at heur_ii is impossible *)
      let horizon =
        Sched.Schedule.length o.Sched.Driver.schedule + heur_ii + 2
      in
      match
        Sched.Exact.minimum_ii ~horizon ~max_ii:heur_ii ~max_cegar:40 config
          g
      with
      | Ok f ->
          if f.Sched.Exact.f_ii > heur_ii then
            Alcotest.failf "%s: exact II %d exceeds heuristic II %d" name
              f.Sched.Exact.f_ii heur_ii;
          check_witness ~name ~original:g f.Sched.Exact.f_schedule
            ~ii:f.Sched.Exact.f_ii;
          (* certificate spot-check: if the level below the witness was
             refuted, the witness squeezed to II-1 must not validate *)
          (if f.Sched.Exact.f_proven && f.Sched.Exact.f_ii > 1 then
             let squeezed =
               {
                 f.Sched.Exact.f_schedule with
                 Sched.Schedule.ii = f.Sched.Exact.f_ii - 1;
               }
             in
             match Check.Validate.run ~original:g squeezed with
             | Ok () ->
                 Alcotest.failf
                   "%s: UNSAT certificate at II %d refuted — the witness \
                    itself validates there"
                   name
                   (f.Sched.Exact.f_ii - 1)
             | Error _ -> ());
          true
      | Error e ->
          (* no witness up to the heuristic II: the planted heuristic
             witness makes `Unsat at heur_ii an encoder bug; `Unknown is
             merely inconclusive *)
          (match Sched.Exact.solve_at ~horizon config g ~ii:heur_ii with
          | `Unsat ->
              Alcotest.failf
                "%s: exact refutes II %d where the heuristic planted a \
                 witness (walk said %s)"
                name heur_ii
                (Sched.Sched_error.to_string e)
          | `Sat _ | `Unknown -> ());
          false)

(* ---- known optima ------------------------------------------------ *)

(* Loops whose optimum is known by hand: three independent integer adds
   on a unified machine schedule at II = 1; a multiply-add recurrence of
   total latency 3 over distance 1 forces II = 3.  Both must be found
   AND proven. *)
let test_known_optima () =
  let b = Graph.Builder.create ~name:"tiny" () in
  for _ = 1 to 3 do
    ignore (Graph.Builder.add b Machine.Opclass.Int_arith)
  done;
  let g = Graph.Builder.build b in
  let config = Machine.Config.unified ~registers:64 in
  (match Sched.Exact.minimum_ii config g with
  | Ok f ->
      Alcotest.(check int) "independent adds reach II=1" 1
        f.Sched.Exact.f_ii;
      Alcotest.(check bool) "and the optimum is proven" true
        f.Sched.Exact.f_proven;
      check_witness ~name:"tiny" ~original:g f.Sched.Exact.f_schedule ~ii:1
  | Error e ->
      Alcotest.failf "tiny loop failed: %s" (Sched.Sched_error.to_string e));
  let b = Graph.Builder.create ~name:"recur" () in
  let u = Graph.Builder.add b ~label:"U" Machine.Opclass.Int_mul in
  let v = Graph.Builder.add b ~label:"V" Machine.Opclass.Int_arith in
  Graph.Builder.depend b ~src:u ~dst:v;
  Graph.Builder.depend b ~distance:1 ~src:v ~dst:u;
  let g = Graph.Builder.build b in
  match Sched.Exact.minimum_ii config g with
  | Ok f ->
      Alcotest.(check int) "lat-3 recurrence forces II=3" 3
        f.Sched.Exact.f_ii;
      Alcotest.(check bool) "proven at the recurrence bound" true
        f.Sched.Exact.f_proven;
      check_witness ~name:"recur" ~original:g f.Sched.Exact.f_schedule ~ii:3
  | Error e ->
      Alcotest.failf "recur loop failed: %s" (Sched.Sched_error.to_string e)

(* The budget hook must degrade to the driver's Timeout class. *)
let test_budget_timeout () =
  let loop, config, _ = Check.Fuzz.case_of_seed ~seed:1 ~nodes:8 in
  let budget = Sched.Budget.make ~max_attempts:0 () in
  match
    Sched.Exact.minimum_ii ~budget config loop.Workload.Generator.graph
  with
  | Error (Sched.Sched_error.Timeout t) ->
      Alcotest.(check int) "no attempts were spent" 0 t.attempts
  | Ok _ -> Alcotest.fail "zero-attempt budget still found a schedule"
  | Error e ->
      Alcotest.failf "expected timeout, got %s"
        (Sched.Sched_error.to_string e)

(* Monotonicity in the replication dimension: allowing replicas can
   only widen the schedule space, never shrink it. *)
let test_replicate_dimension () =
  let loop, _, _ = Check.Fuzz.case_of_seed ~seed:7 ~nodes:10 in
  let g = loop.Workload.Generator.graph in
  let config =
    Machine.Config.make ~clusters:2 ~buses:1 ~bus_latency:2 ~registers:64
  in
  match
    ( Sched.Exact.minimum_ii ~replicate:false ~max_ii:40 config g,
      Sched.Exact.minimum_ii ~replicate:true ~max_ii:40 config g )
  with
  | Ok base, Ok repl ->
      Alcotest.(check bool) "replication never raises the exact II" true
        (repl.Sched.Exact.f_ii <= base.Sched.Exact.f_ii)
  | _ -> Alcotest.fail "exact failed to schedule the replication probe"

(* ---- differential sweeps ----------------------------------------- *)

let test_fuzz_differential () =
  let cases = List.init 20 (fun i -> (3 * i, 4 + (i mod 11))) in
  let conclusive = ref 0 in
  List.iter
    (fun (seed, nodes) ->
      let loop, config, _mode = Check.Fuzz.case_of_seed ~seed ~nodes in
      let name =
        Printf.sprintf "fuzz seed=%d nodes=%d config=%s" seed nodes
          (Machine.Config.name config)
      in
      if check_case ~name config loop.Workload.Generator.graph then
        incr conclusive)
    cases;
  if !conclusive < 10 then
    Alcotest.failf "only %d/20 fuzz cases were conclusive" !conclusive

let test_suite_differential () =
  (* the generated evaluation suite bottoms out at 16 nodes *)
  let small =
    List.filter
      (fun l -> Graph.n_nodes l.Workload.Generator.graph <= 18)
      (Workload.Generator.suite ())
  in
  let cases = List.filteri (fun i _ -> i < 8) small in
  Alcotest.(check bool) "suite has small loops" true (List.length cases > 0);
  let conclusive = ref 0 in
  List.iteri
    (fun i l ->
      let clusters = if i mod 2 = 0 then 4 else 2 in
      let config =
        Machine.Config.make ~clusters ~buses:1 ~bus_latency:2 ~registers:64
      in
      let name =
        Printf.sprintf "suite %s config=%s" l.Workload.Generator.id
          (Machine.Config.name config)
      in
      if check_case ~name config l.Workload.Generator.graph then
        incr conclusive)
    cases;
  if !conclusive < List.length cases / 2 then
    Alcotest.failf "only %d/%d suite cases were conclusive" !conclusive
      (List.length cases)

let suite =
  [
    Alcotest.test_case "known optima are found and proven" `Quick
      test_known_optima;
    Alcotest.test_case "budget degrades to Timeout" `Quick
      test_budget_timeout;
    Alcotest.test_case "replication dimension is monotone" `Quick
      test_replicate_dimension;
    Alcotest.test_case "differential vs heuristic (fuzz cases)" `Slow
      test_fuzz_differential;
    Alcotest.test_case "differential vs heuristic (suite loops)" `Slow
      test_suite_differential;
  ]
