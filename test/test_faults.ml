(* Fault-injection properties: the corruption catalog versus the
   legality checker.

   The catalog exists to prove the checker's coverage, so the contract
   under test is exactly the acceptance bar of docs/ROBUSTNESS.md: on a
   checker-clean schedule, every applicable corruption must flip the
   checker to [Error] with the catalog's expected substring among the
   violations, a corruption must never crash the checker, and the
   original schedule must stay clean afterwards (injections copy, they
   do not mutate). *)

let config4c = Option.get (Machine.Config.of_name "4c1b2l64r")

let clean_schedule_of_seed seed =
  let g = Props.graph_of_seed seed in
  let tr, _ = Replication.Replicate.transform () in
  match Sched.Driver.schedule_loop ~transform:tr config4c g with
  | Error _ -> None
  | Ok o -> (
      let s = o.Sched.Driver.schedule in
      match Sim.Checker.check s with Ok () -> Some s | Error _ -> None)

let prop_catalog_flips_checker =
  QCheck.Test.make
    ~name:"every applicable corruption is detected and named; identity stays clean"
    ~count:80 Props.seed_arb (fun seed ->
      match clean_schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some s ->
          List.iter
            (fun (inj : Sim.Faults.injection) ->
              match Sim.Faults.verify s inj with
              | Sim.Faults.Detected _ | Sim.Faults.Not_applicable -> ()
              | Sim.Faults.Missed ->
                  QCheck.Test.fail_reportf "%s: checker said Ok" inj.name
              | Sim.Faults.Misnamed es ->
                  QCheck.Test.fail_reportf "%s: expected %S among: %s" inj.name
                    inj.expect (String.concat "; " es))
            Sim.Faults.catalog;
          (* identity: the schedule the injections started from is
             untouched and still clean *)
          match Sim.Checker.check s with
          | Ok () -> true
          | Error es ->
              QCheck.Test.fail_reportf "identity corrupted: %s"
                (String.concat "; " es))

(* Deterministic coverage: over a slice of the real workload, every
   catalog entry must find at least one schedule it applies to and be
   detected there — an entry that is Not_applicable everywhere tests
   nothing. *)
let test_catalog_coverage () =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  let loops =
    List.concat_map
      (fun b -> take 2 (Workload.Generator.generate b))
      Workload.Benchmark.all
  in
  let detected = Hashtbl.create 16 in
  List.iter
    (fun (l : Workload.Generator.loop) ->
      List.iter
        (fun mode ->
          match Metrics.Experiment.run_loop mode config4c l with
          | Error _ -> ()
          | Ok r ->
              let s = r.Metrics.Experiment.outcome.Sched.Driver.schedule in
              List.iter
                (fun (inj : Sim.Faults.injection) ->
                  match Sim.Faults.verify s inj with
                  | Sim.Faults.Detected _ ->
                      Hashtbl.replace detected inj.name ()
                  | _ -> ())
                Sim.Faults.catalog)
        [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ])
    loops;
  List.iter
    (fun (inj : Sim.Faults.injection) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s detected somewhere" inj.name)
        true
        (Hashtbl.mem detected inj.name))
    Sim.Faults.catalog

let suite =
  [
    QCheck_alcotest.to_alcotest prop_catalog_flips_checker;
    Alcotest.test_case "catalog coverage over the workload" `Quick
      test_catalog_coverage;
  ]
