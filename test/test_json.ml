(* Round-trip property for the hand-rolled JSON layer: parse (print v)
   = v over generated values, including escaping-heavy strings and
   nested arrays/objects.  The generator only emits numbers the printer
   represents exactly (integral floats below 1e15, binary fractions
   with few significant digits), matching the layer's actual use —
   checkpoint manifests and fuzz corpora carry ints and short
   decimals. *)

open Metrics.Json

let gen_num =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map float_of_int (QCheck.Gen.int_range (-1_000_000) 1_000_000);
      QCheck.Gen.map float_of_int
        (QCheck.Gen.int_range (-1_000_000_000_000) 1_000_000_000_000);
      (* binary fractions with at most 6 significant digits survive %g *)
      QCheck.Gen.map
        (fun (a, k) -> float_of_int a /. float_of_int (1 lsl k))
        (QCheck.Gen.pair (QCheck.Gen.int_range (-999) 999)
           (QCheck.Gen.int_range 0 3));
    ]

let gen_string =
  let nasty =
    QCheck.Gen.oneofl
      [ "\""; "\\"; "\n"; "\r"; "\t"; "\x00"; "\x1f"; "a\"b\\c"; "\xc3\xa9" ]
  in
  let any_char_string =
    QCheck.Gen.string_size ~gen:QCheck.Gen.char (QCheck.Gen.int_range 0 12)
  in
  QCheck.Gen.oneof
    [
      any_char_string;
      QCheck.Gen.map (String.concat "") (QCheck.Gen.list_size (QCheck.Gen.int_range 0 4) nasty);
    ]

let rec gen_value depth =
  let leaf =
    QCheck.Gen.oneof
      [
        QCheck.Gen.return Null;
        QCheck.Gen.map (fun b -> Bool b) QCheck.Gen.bool;
        QCheck.Gen.map (fun f -> Num f) gen_num;
        QCheck.Gen.map (fun s -> Str s) gen_string;
      ]
  in
  if depth = 0 then leaf
  else
    QCheck.Gen.frequency
      [
        (3, leaf);
        ( 1,
          QCheck.Gen.map
            (fun xs -> List xs)
            (QCheck.Gen.list_size (QCheck.Gen.int_range 0 4)
               (gen_value (depth - 1))) );
        ( 1,
          QCheck.Gen.map
            (fun fields -> Obj fields)
            (QCheck.Gen.list_size (QCheck.Gen.int_range 0 4)
               (QCheck.Gen.pair gen_string (gen_value (depth - 1)))) );
      ]

let value_arb = QCheck.make ~print (gen_value 3)

let roundtrip =
  QCheck.Test.make ~name:"parse (print v) = v" ~count:1000 value_arb (fun v ->
      parse (print v) = v)

let roundtrip_twice =
  QCheck.Test.make ~name:"print is a fixpoint under reparsing" ~count:300
    value_arb (fun v -> print (parse (print v)) = print v)

open Alcotest

let test_examples () =
  (* pin the concrete grammar the manifests rely on *)
  check string "integral without decimal point" "42" (print (Num 42.));
  check string "negative fraction" "-0.125" (print (Num (-0.125)));
  check string "escaping" "\"a\\\"b\\\\c\\n\\u0001\"" (print (Str "a\"b\\c\n\x01"));
  check string "nested arrays compact" "[[1,2],[],[[3]]]"
    (print (List [ List [ Num 1.; Num 2. ]; List []; List [ List [ Num 3. ] ] ]));
  check string "object" "{\"k\":null,\"l\":[true,false]}"
    (print (Obj [ ("k", Null); ("l", List [ Bool true; Bool false ]) ]))

let test_roundtrip_examples () =
  List.iter
    (fun v ->
      if parse (print v) <> v then
        Alcotest.failf "round trip broke %s" (print v))
    [
      Null;
      Num 0.;
      Num (-0.);
      Num 1e12;
      Str "";
      Str "\x00\x01\x1f\"\\ \xff";
      List [];
      Obj [];
      Obj [ ("", Null); ("", Bool true) ];
      List [ Obj [ ("a", List [ Num 0.5; Str "\n" ]) ] ];
    ]

let suite =
  List.map QCheck_alcotest.to_alcotest [ roundtrip; roundtrip_twice ]
  @ [
      test_case "printer grammar examples" `Quick test_examples;
      test_case "round-trip corner cases" `Quick test_roundtrip_examples;
    ]
