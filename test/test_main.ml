(* Suite names are stable aliases matching their test_<name>.ml files:
   the @check-fast dune alias (and `make check-fast`) selects the
   sub-second suites by name regex, so renaming one silently changes
   what CI's fast gate runs — don't.  docs/TESTING.md documents the
   fast/slow split. *)
let () =
  Alcotest.run "cluster_replication"
    [
      ("machine", Test_machine.suite);
      ("ddg", Test_ddg.suite);
      ("mii", Test_mii.suite);
      ("sched", Test_sched.suite);
      ("pseudo", Test_pseudo.suite);
      ("spill", Test_spill.suite);
      ("driver", Test_driver.suite);
      ("regalloc", Test_regalloc.suite);
      ("replication", Test_replication.suite);
      ("sim", Test_sim.suite);
      ("codegen", Test_codegen.suite);
      ("regsim", Test_regsim.suite);
      ("workload", Test_workload.suite);
      ("unroll", Test_unroll.suite);
      ("acyclic", Test_acyclic.suite);
      ("metrics", Test_metrics.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("robustness", Test_robustness.suite);
      ("faults", Test_faults.suite);
      ("sched_error", Test_sched_error.suite);
      ("json", Test_json.suite);
      ("check", Test_check.suite);
      ("model", Test_model.suite);
      ("sat", Test_sat.suite);
      ("exact", Test_exact.suite);
      ("misc", Test_misc.suite);
      ("export", Test_export.suite);
      ("props", Props.suite);
    ]
