let () =
  Alcotest.run "cluster_replication"
    [
      ("machine", Test_machine.suite);
      ("ddg", Test_ddg.suite);
      ("mii+analysis+scc", Test_mii.suite);
      ("scheduler", Test_sched.suite);
      ("pseudo", Test_pseudo.suite);
      ("spill", Test_spill.suite);
      ("driver", Test_driver.suite);
      ("regalloc", Test_regalloc.suite);
      ("replication", Test_replication.suite);
      ("simulator", Test_sim.suite);
      ("codegen", Test_codegen.suite);
      ("regsim", Test_regsim.suite);
      ("workload", Test_workload.suite);
      ("unroll", Test_unroll.suite);
      ("acyclic", Test_acyclic.suite);
      ("metrics+figures", Test_metrics.suite);
      ("robustness", Test_robustness.suite);
      ("faults", Test_faults.suite);
      ("misc", Test_misc.suite);
      ("export", Test_export.suite);
      ("properties", Props.suite);
    ]
