(* Metrics: IPC accounting, aggregation, tables, and the experiment
   figures on a small deterministic subset of the workload. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let config = Option.get (Machine.Config.of_name "4c1b2l64r")

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let small_loops =
  lazy
    (List.concat_map
       (fun b -> take 2 (Workload.Generator.generate b))
       Workload.Benchmark.all)

let small_suite = lazy (Metrics.Suite.create ~loops:(Lazy.force small_loops) ())

let test_hmean () =
  check (Alcotest.float 1e-9) "constant" 2. (Metrics.Experiment.hmean [ 2.; 2.; 2. ]);
  check (Alcotest.float 1e-9) "two values" (4. /. 3.)
    (Metrics.Experiment.hmean [ 1.; 2. ]);
  check (Alcotest.float 1e-9) "empty" 0. (Metrics.Experiment.hmean []);
  check bool "hmean <= amean" true
    (Metrics.Experiment.hmean [ 1.; 9. ] <= 5.)

let test_table_render () =
  let t =
    Metrics.Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  let lines = String.split_on_char '\n' t in
  check int "5 lines (incl trailing empty)" 5 (List.length lines);
  (* all rows same width *)
  (match lines with
  | h :: sep :: rest ->
      List.iter
        (fun l ->
          if l <> "" then check int "width" (String.length h) (String.length l))
        (sep :: rest)
  | _ -> Alcotest.fail "unexpected shape");
  check Alcotest.string "pct" "25.0%" (Metrics.Table.pct 0.25);
  check Alcotest.string "f2" "1.50" (Metrics.Table.f2 1.5);
  check Alcotest.string "bar full" "#####" (Metrics.Table.bar ~width:5 1. 1.);
  check Alcotest.string "bar empty" "" (Metrics.Table.bar ~width:5 0. 1.)

let test_run_loop_modes () =
  let l = List.hd (Lazy.force small_loops) in
  List.iter
    (fun mode ->
      match Metrics.Experiment.run_loop mode config l with
      | Ok r ->
          check bool "cycles positive" true (r.counts.Sim.Lockstep.cycles > 0);
          check bool "useful positive" true
            (r.counts.Sim.Lockstep.useful_ops > 0)
      | Error e -> Alcotest.failf "mode failed: %s" (Sched.Sched_error.to_string e))
    Metrics.Experiment.
      [ Baseline; Replication; Replication_latency0; Macro_replication;
        Replication_length ]

let test_ipc_weighted () =
  let runs =
    Metrics.Experiment.run_suite Metrics.Experiment.Baseline config
      (take 4 (Lazy.force small_loops))
  in
  let ipc = Metrics.Experiment.ipc runs in
  check bool "ipc in (0, 12]" true (ipc > 0. && ipc <= 12.);
  check bool "weighted mean ii >= 1" true
    (Metrics.Experiment.weighted_mean_ii runs >= 1.)

let test_suite_caching () =
  let suite = Lazy.force small_suite in
  let a = Metrics.Suite.runs suite Metrics.Experiment.Baseline config in
  let b = Metrics.Suite.runs suite Metrics.Experiment.Baseline config in
  check bool "cached (physically equal)" true (a == b);
  check int "benchmark groups" 10
    (List.length (Metrics.Suite.benchmark_runs suite Metrics.Experiment.Baseline config))

let test_replication_beats_baseline () =
  let suite = Lazy.force small_suite in
  let base = Metrics.Suite.runs suite Metrics.Experiment.Baseline config in
  let repl = Metrics.Suite.runs suite Metrics.Experiment.Replication config in
  (* per loop, the replication driver never ends with a larger II *)
  List.iter2
    (fun (b : Metrics.Experiment.loop_run) (r : Metrics.Experiment.loop_run) ->
      check bool
        (Printf.sprintf "%s ii" b.loop.Workload.Generator.id)
        true
        (r.outcome.Sched.Driver.ii <= b.outcome.Sched.Driver.ii))
    base repl;
  check bool "aggregate ipc not worse" true
    (Metrics.Experiment.ipc repl >= Metrics.Experiment.ipc base)

let test_fig1_fractions () =
  let suite = Lazy.force small_suite in
  List.iter
    (fun (r : Metrics.Figures.fig1_row) ->
      let total = r.f1_bus +. r.f1_recurrence +. r.f1_registers in
      check bool "fractions sum to 0 or 1" true
        (total = 0. || abs_float (total -. 1.) < 1e-9);
      check bool "bus dominates" true
        (r.f1_bus >= r.f1_recurrence && r.f1_bus >= r.f1_registers))
    (Metrics.Figures.fig1_data suite)

let test_fig7_shape () =
  let suite = Lazy.force small_suite in
  let panels = Metrics.Figures.fig7_data suite in
  check int "six panels" 6 (List.length panels);
  List.iter
    (fun (p : Metrics.Figures.fig7_panel) ->
      check int "ten benchmarks" 10 (List.length p.cells);
      check bool "replication hmean not worse" true
        (p.hmean_repl >= p.hmean_base -. 1e-9))
    panels

let test_fig8_unified_is_best () =
  let suite = Lazy.force small_suite in
  match Metrics.Figures.fig8_data suite with
  | unified :: clustered ->
      List.iter
        (fun (r : Metrics.Figures.fig8_row) ->
          check bool "unified upper bound" true
            (unified.Metrics.Figures.f8_base >= r.Metrics.Figures.f8_base -. 1e-9))
        clustered
  | [] -> Alcotest.fail "no fig8 data"

let test_fig9_reduction_nonnegative () =
  let suite = Lazy.force small_suite in
  List.iter
    (fun (r : Metrics.Figures.fig9_row) ->
      check bool "replication never raises the II" true
        (r.reduction >= -1e-9))
    (Metrics.Figures.fig9_data suite)

let test_fig10_int_dominates () =
  let suite = Lazy.force small_suite in
  let rows = Metrics.Figures.fig10_data suite in
  (* the paper's observation: integer ops are the most replicated kind;
     check it in aggregate over the 4-cluster configurations *)
  let agg f =
    List.fold_left (fun acc (r : Metrics.Figures.fig10_row) -> acc +. f r) 0. rows
  in
  check bool "int >= fp" true
    (agg (fun r -> r.added_int) >= agg (fun r -> r.added_fp));
  check bool "int >= mem" true
    (agg (fun r -> r.added_int) >= agg (fun r -> r.added_mem))

let test_fig12_upper_bound () =
  let suite = Lazy.force small_suite in
  List.iter
    (fun (r : Metrics.Figures.fig12_row) ->
      check bool "latency-0 is an upper bound" true
        (r.ipc_latency0 >= r.ipc_repl -. 1e-9))
    (Metrics.Figures.fig12_data suite)

let test_sec4_sane () =
  let suite = Lazy.force small_suite in
  let s = Metrics.Figures.sec4_data suite in
  check bool "fraction in [0,1]" true
    (s.comms_removed_frac >= 0. && s.comms_removed_frac <= 1.);
  check bool "small subgraphs" true
    (s.instrs_per_removed_comm >= 1. && s.instrs_per_removed_comm < 6.)

let test_sec52_macro_not_better () =
  let suite = Lazy.force small_suite in
  List.iter
    (fun (r : Metrics.Figures.sec52_row) ->
      check bool "macro never beats minimal subgraphs" true
        (r.ipc_macro <= r.ipc_subgraph +. 1e-9);
      check bool "macro removes no more comms" true
        (r.removed_macro <= r.removed_subgraph))
    (Metrics.Figures.sec52_data suite)

let test_figures_render () =
  (* every renderer produces non-empty text without raising *)
  let suite = Lazy.force small_suite in
  List.iter
    (fun (id, text) ->
      check bool (id ^ " non-empty") true (String.length text > 40))
    (Metrics.Figures.all suite)

(* ------------------------------------------------------------------ *)
(* Register-family sweeps                                              *)
(* ------------------------------------------------------------------ *)

let sec4_family =
  List.map
    (fun registers ->
      Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers)
    [ 32; 64; 128 ]

(* Everything a figure can observe about a run. *)
let canon_run (r : Metrics.Experiment.loop_run) =
  ( r.loop.Workload.Generator.id,
    r.outcome.Sched.Driver.mii,
    r.outcome.Sched.Driver.ii,
    List.sort compare r.outcome.Sched.Driver.increments,
    r.outcome.Sched.Driver.n_comms,
    Array.to_list r.outcome.Sched.Driver.schedule.Sched.Schedule.cycles,
    Machine.Config.name
      r.outcome.Sched.Driver.schedule.Sched.Schedule.config,
    r.counts.Sim.Lockstep.cycles,
    r.counts.Sim.Lockstep.useful_ops )

(* Trace-replayed sweeps must be observably identical to running every
   family member from scratch, at any pool size. *)
let test_sweep_runs_match_direct () =
  let loops = take 10 (Lazy.force small_loops) in
  List.iter
    (fun jobs ->
      let suite = Metrics.Suite.create ~loops ~jobs () in
      List.iter
        (fun mode ->
          List.iter
            (fun (config, runs) ->
              let direct = Metrics.Experiment.run_suite mode config loops in
              check int
                (Printf.sprintf "jobs=%d %s run count" jobs
                   (Machine.Config.name config))
                (List.length direct) (List.length runs);
              List.iter2
                (fun a b ->
                  check bool
                    (Printf.sprintf "jobs=%d %s run equal" jobs
                       (Machine.Config.name config))
                    true
                    (canon_run a = canon_run b))
                direct runs)
            (Metrics.Suite.sweep_runs suite mode sec4_family))
        [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ])
    [ 1; 2 ]

let test_spill_runs_match_direct () =
  let loops = take 10 (Lazy.force small_loops) in
  let config = List.hd sec4_family in
  List.iter
    (fun jobs ->
      let suite = Metrics.Suite.create ~loops ~jobs () in
      List.iter
        (fun mode ->
          let swept = Metrics.Suite.spill_runs suite mode config in
          let direct =
            List.filter_map
              (fun l ->
                let transform, stats_ref =
                  match mode with
                  | Metrics.Experiment.Baseline -> (None, ref None)
                  | _ ->
                      let t, r = Replication.Replicate.transform () in
                      (Some t, r)
                in
                match
                  Metrics.Experiment.run_with ~mode
                    ~spiller:Sched.Spill.spiller ~transform ~stats_ref
                    config l
                with
                | Ok r -> Some r
                | Error _ -> None)
              loops
          in
          check int
            (Printf.sprintf "jobs=%d spill run count" jobs)
            (List.length direct) (List.length swept);
          List.iter2
            (fun a b ->
              check bool
                (Printf.sprintf "jobs=%d spill run equal" jobs)
                true
                (canon_run a = canon_run b))
            direct swept)
        [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ])
    [ 1; 2 ]

(* Cross-family reuse: members sharing only the cluster/unit structure
   (different buses or bus latency) replay the first member's recording
   with per-level verification.  Results must be observably identical
   to direct sweeps, at any pool size — jobs=8 clamps to the machine
   but must not change a byte either way. *)
let cross_family =
  List.map
    (fun (buses, bus_latency) ->
      Machine.Config.make ~clusters:4 ~buses ~bus_latency ~registers:64)
    [ (1, 2); (2, 2); (2, 4) ]

let test_cross_family_matches_direct () =
  let loops = take 10 (Lazy.force small_loops) in
  List.iter
    (fun jobs ->
      let suite = Metrics.Suite.create ~loops ~jobs () in
      List.iter
        (fun mode ->
          List.iter
            (fun (config, runs) ->
              let direct = Metrics.Experiment.run_suite mode config loops in
              check int
                (Printf.sprintf "jobs=%d %s cross run count" jobs
                   (Machine.Config.name config))
                (List.length direct) (List.length runs);
              List.iter2
                (fun a b ->
                  check bool
                    (Printf.sprintf "jobs=%d %s cross run equal" jobs
                       (Machine.Config.name config))
                    true
                    (canon_run a = canon_run b))
                direct runs)
            (Metrics.Suite.sweep_runs suite mode cross_family))
        [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ])
    [ 1; 8 ]

(* The stricter-member re-record: a roomy member recorded first, then a
   tighter register file arrives — the family re-records there, and
   every member (including the one answered before the re-record) must
   still equal its direct run. *)
let test_rerecord_at_stricter_member () =
  let loops = take 10 (Lazy.force small_loops) in
  let family order =
    List.map
      (fun registers ->
        Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers)
      order
  in
  List.iter
    (fun order ->
      let suite = Metrics.Suite.create ~loops () in
      List.iter
        (fun mode ->
          List.iter
            (fun (config, runs) ->
              let direct = Metrics.Experiment.run_suite mode config loops in
              List.iter2
                (fun a b ->
                  check bool
                    (Printf.sprintf "%s after re-record equal"
                       (Machine.Config.name config))
                    true
                    (canon_run a = canon_run b))
                direct runs)
            (Metrics.Suite.sweep_runs suite mode (family order));
          (* the spill sweep replays whatever trace the re-record left *)
          ignore
            (Metrics.Suite.spill_runs suite mode
               (List.hd (family [ 32 ]))))
        [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ])
    [ [ 64; 32; 128 ]; [ 128; 64; 32 ] ]

(* Every schedule a cross-family replay emits must satisfy the
   independent oracle, exactly like a direct run's. *)
let test_validate_cross_family_replays () =
  let loops = take 10 (Lazy.force small_loops) in
  let suite = Metrics.Suite.create ~loops () in
  let recording = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64 in
  let member = Machine.Config.make ~clusters:4 ~buses:2 ~bus_latency:4 ~registers:64 in
  ignore (Metrics.Suite.runs suite Metrics.Experiment.Replication recording);
  let reused = Metrics.Suite.runs suite Metrics.Experiment.Replication member in
  check bool "cross-family replay produced runs" true (reused <> []);
  List.iter
    (fun (r : Metrics.Experiment.loop_run) ->
      match
        Check.Validate.run ~original:r.loop.Workload.Generator.graph
          r.outcome.Sched.Driver.schedule
      with
      | Ok () -> ()
      | Error issues ->
          Alcotest.failf "oracle rejects replayed %s: %s"
            r.loop.Workload.Generator.id
            (String.concat "; " (Check.Validate.to_strings issues)))
    reused

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  let f x = (2 * x) + 1 in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      check (Alcotest.list int)
        (Printf.sprintf "map order at jobs=%d" jobs)
        expect
        (Metrics.Pool.map ~jobs f xs))
    [ 1; 2; 3; 8 ];
  check (Alcotest.list int) "empty input" []
    (Metrics.Pool.map ~jobs:4 f []);
  check (Alcotest.list int) "more jobs than items" [ 1; 3 ]
    (Metrics.Pool.map ~jobs:16 f [ 0; 1 ])

let test_pool_filter_map () =
  let xs = List.init 50 Fun.id in
  let f x = if x mod 3 = 0 then Some (x * x) else None in
  let expect = List.filter_map f xs in
  List.iter
    (fun jobs ->
      check (Alcotest.list int)
        (Printf.sprintf "filter_map at jobs=%d" jobs)
        expect
        (Metrics.Pool.filter_map ~jobs f xs))
    [ 1; 2; 4 ]

exception Boom of int

let test_pool_exception () =
  (* the first failure in input order propagates, at any parallelism,
     wrapped so the item index and original exception survive *)
  List.iter
    (fun jobs ->
      match
        Metrics.Pool.map ~jobs
          (fun x -> if x >= 7 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Fault" jobs
      | exception Metrics.Pool.Fault { index; exn = Boom x; _ } ->
          check int (Printf.sprintf "jobs=%d first failure" jobs) 7 x;
          check int (Printf.sprintf "jobs=%d fault index" jobs) 7 index
      | exception e ->
          Alcotest.failf "jobs=%d: unexpected %s" jobs (Printexc.to_string e))
    [ 1; 2; 4 ]

let test_pool_default_jobs () =
  check bool "default_jobs positive" true (Metrics.Pool.default_jobs () >= 1)

let test_pool_clamp () =
  let d = Metrics.Pool.default_jobs () in
  check int "clamp from below" 1 (Metrics.Pool.clamp_jobs 0);
  check int "clamp from below (negative)" 1 (Metrics.Pool.clamp_jobs (-3));
  check int "clamp from above" d (Metrics.Pool.clamp_jobs (d + 100));
  check int "identity inside the range" 1 (Metrics.Pool.clamp_jobs 1)

(* Phase timers under the pool: every worker's local counters must merge
   into the global totals when the domains join, so the reported time is
   the sum over all participants — not just the orchestrator's share. *)
let test_profile_merge_across_domains () =
  Sched.Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Sched.Profile.set_enabled false)
    (fun () ->
      let busy _ =
        Sched.Profile.time Sched.Profile.Partition (fun () ->
            let t0 = Unix.gettimeofday () in
            while Unix.gettimeofday () -. t0 < 0.02 do
              ignore (Sys.opaque_identity 1)
            done)
      in
      ignore (Metrics.Pool.map ~jobs:2 busy [ 0; 1; 2; 3 ]);
      let total = Sched.Profile.seconds Sched.Profile.Partition in
      check bool "worker phase time merged on join" true (total >= 0.06))

let suite =
  [
    Alcotest.test_case "pool map order" `Quick test_pool_map_order;
    Alcotest.test_case "pool filter_map" `Quick test_pool_filter_map;
    Alcotest.test_case "pool exception" `Quick test_pool_exception;
    Alcotest.test_case "pool default jobs" `Quick test_pool_default_jobs;
    Alcotest.test_case "pool clamp" `Quick test_pool_clamp;
    Alcotest.test_case "profile merge across domains" `Quick
      test_profile_merge_across_domains;
    Alcotest.test_case "hmean" `Quick test_hmean;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "run_loop all modes" `Quick test_run_loop_modes;
    Alcotest.test_case "ipc weighted" `Quick test_ipc_weighted;
    Alcotest.test_case "suite caching" `Quick test_suite_caching;
    Alcotest.test_case "replication beats baseline" `Slow
      test_replication_beats_baseline;
    Alcotest.test_case "fig1 fractions" `Slow test_fig1_fractions;
    Alcotest.test_case "fig7 shape" `Slow test_fig7_shape;
    Alcotest.test_case "fig8 unified best" `Slow test_fig8_unified_is_best;
    Alcotest.test_case "fig9 reduction" `Slow test_fig9_reduction_nonnegative;
    Alcotest.test_case "fig10 int dominates" `Slow test_fig10_int_dominates;
    Alcotest.test_case "fig12 upper bound" `Slow test_fig12_upper_bound;
    Alcotest.test_case "sec4 sane" `Slow test_sec4_sane;
    Alcotest.test_case "sec52 macro not better" `Slow
      test_sec52_macro_not_better;
    Alcotest.test_case "figures render" `Slow test_figures_render;
    Alcotest.test_case "sweep runs match direct" `Slow
      test_sweep_runs_match_direct;
    Alcotest.test_case "spill runs match direct" `Slow
      test_spill_runs_match_direct;
    Alcotest.test_case "cross-family sweeps match direct" `Slow
      test_cross_family_matches_direct;
    Alcotest.test_case "re-record at stricter member" `Slow
      test_rerecord_at_stricter_member;
    Alcotest.test_case "oracle validates cross-family replays" `Slow
      test_validate_cross_family_replays;
  ]
