(* Edge cases across the stack that the focused suites do not cover. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let config4c = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64

let test_route_without_buses_rejected () =
  (* a clustered machine cannot be built without buses, so force the
     condition through a custom machine and a cross-cluster partition *)
  let g = Ddg.Examples.tiny_chain ~n:2 () in
  let config =
    Machine.Config.custom ~clusters:2 ~buses:1 ~bus_latency:1 ~registers:64
      ~fus_per_cluster:(1, 1, 1)
  in
  (* valid: one bus *)
  let route = Sched.Route.build config g ~assign:[| 0; 1 |] in
  check int "one copy" 1 (Sched.Route.n_copies route)

let test_subgraph_compute_for_rejects_bad_cluster () =
  let g = Ddg.Examples.figure3 () in
  let assign = Ddg.Examples.figure3_partition g in
  let state = Replication.State.create config4c g ~assign in
  let d = Ddg.Graph.find_label g "D" in
  (* D's value is needed only in cluster 3; asking for cluster 0 is an
     error *)
  check bool "raises" true
    (try
       ignore
         (Replication.Subgraph.compute_for state
            ~clusters:(Replication.State.Iset.singleton 0) d);
       false
     with Invalid_argument _ -> true)

let test_first_come_heuristic_differs () =
  (* on the Figure-3 example, first-come picks S_D (first comm in scan
     order), the paper's heuristic picks S_E *)
  let g = Ddg.Examples.figure3 () in
  let assign = Ddg.Examples.figure3_partition g in
  let config =
    Machine.Config.custom ~clusters:4 ~buses:1 ~bus_latency:1 ~registers:64
      ~fus_per_cluster:(4, 0, 0)
  in
  let sel heuristic =
    let state = Replication.State.create config g ~assign in
    match Replication.Replicate.select ~heuristic state ~ii:2 ~extra:1 with
    | Some [ s ] -> Ddg.Graph.label g s.Replication.Subgraph.com
    | _ -> Alcotest.fail "expected one replication"
  in
  check Alcotest.string "paper picks E" "E"
    (sel Replication.Replicate.Lowest_weight);
  check Alcotest.string "first-come picks D" "D"
    (sel Replication.Replicate.First_come)

let test_macro_transform_none_on_unified () =
  let tr, stats = Replication.Macro.transform () in
  let g = Ddg.Examples.figure3 () in
  let unified = Machine.Config.unified ~registers:64 in
  check bool "none" true
    (tr unified g ~assign:(Array.make 14 0) ~ii:1 = None);
  check bool "stats cleared" true (!stats = None)

let test_lockstep_explicit_cap () =
  let g = Ddg.Examples.tiny_chain ~n:3 () in
  let unified = Machine.Config.unified ~registers:64 in
  let o = Result.get_ok (Sched.Driver.schedule_loop unified g) in
  let c = Sim.Lockstep.run_exn o.Sched.Driver.schedule ~iterations:100000 in
  check bool "explicit prefix bounded" true
    (c.Sim.Lockstep.explicit_iterations < 100);
  check int "but full count analytic" 100000 c.Sim.Lockstep.iterations

let test_rng_split_independent () =
  let parent = Workload.Rng.create 5 in
  let a = Workload.Rng.split parent in
  let b = Workload.Rng.split parent in
  let differs = ref false in
  for _ = 1 to 30 do
    if Workload.Rng.int a 1000000 <> Workload.Rng.int b 1000000 then
      differs := true
  done;
  check bool "children independent" true !differs

let test_schedule_pp_renders () =
  let g = Ddg.Examples.figure3 () in
  let o = Result.get_ok (Sched.Driver.schedule_loop config4c g) in
  let text = Format.asprintf "%a" Sched.Schedule.pp o.Sched.Driver.schedule in
  check bool "mentions II" true (String.length text > 20)

let test_length_opt_on_unified_is_noop () =
  let g = Ddg.Examples.tiny_chain ~n:4 () in
  let unified = Machine.Config.unified ~registers:64 in
  let o = Result.get_ok (Sched.Driver.schedule_loop unified g) in
  let o', st = Replication.Length_opt.improve unified o in
  check int "no attempts without comms" 0 st.Replication.Length_opt.attempts;
  check bool "same outcome" true (o == o')

let test_spill_none_when_pressure_fits () =
  let g = Ddg.Examples.tiny_chain ~n:4 () in
  let unified = Machine.Config.unified ~registers:64 in
  let o = Result.get_ok (Sched.Driver.schedule_loop unified g) in
  let assign = Array.make (Ddg.Graph.n_nodes g) 0 in
  check bool "no spill needed" true
    (Sched.Spill.rewrite unified o.Sched.Driver.schedule ~graph:g ~assign
    = None)

let test_cross_path_copies () =
  let base = Machine.Config.make ~clusters:4 ~buses:2 ~bus_latency:2 ~registers:64 in
  let xp = Machine.Config.with_copy_int_slot base in
  check bool "flag set" true xp.Machine.Config.copy_uses_int_slot;
  check Alcotest.string "name suffix" "4c2b2l64r+cp" (Machine.Config.name xp);
  check bool "distinct from base" false (Machine.Config.equal base xp);
  (* schedules on the cross-path machine verify, and copies really
     consume integer slots (the checker now accounts for them) *)
  List.iter
    (fun g ->
      match Sched.Driver.schedule_loop xp g with
      | Ok o ->
          Sim.Checker.check_exn o.Sched.Driver.schedule;
          ignore (Sim.Lockstep.run_exn o.Sched.Driver.schedule ~iterations:20)
      | Error e -> Alcotest.failf "cross-path: %s" (Sched.Sched_error.to_string e))
    [
      Ddg.Examples.figure3 ();
      (List.hd (Workload.Generator.generate (Workload.Benchmark.find "swim")))
        .Workload.Generator.graph;
    ]

let test_cross_path_not_cheaper () =
  (* stealing issue slots can only hurt (or tie): II never decreases *)
  let base = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64 in
  let xp = Machine.Config.with_copy_int_slot base in
  let rec take k = function
    | [] -> [] | _ when k = 0 -> [] | x :: tl -> x :: take (k - 1) tl
  in
  List.iter
    (fun (l : Workload.Generator.loop) ->
      match
        ( Sched.Driver.schedule_loop base l.graph,
          Sched.Driver.schedule_loop xp l.graph )
      with
      | Ok b, Ok x ->
          check bool l.id true (x.Sched.Driver.ii + 2 >= b.Sched.Driver.ii)
      | _ -> ())
    (take 6 (Workload.Generator.generate (Workload.Benchmark.find "apsi")))

let test_graph_pp_stats () =
  let g = Ddg.Examples.with_recurrence () in
  let s = Format.asprintf "%a" Ddg.Graph.pp_stats g in
  check bool "mentions counts" true
    (String.length s > 10 && String.sub s 0 4 = "with")

let suite =
  [
    Alcotest.test_case "route with buses" `Quick
      test_route_without_buses_rejected;
    Alcotest.test_case "compute_for rejects bad cluster" `Quick
      test_subgraph_compute_for_rejects_bad_cluster;
    Alcotest.test_case "first-come differs" `Quick
      test_first_come_heuristic_differs;
    Alcotest.test_case "macro transform none on unified" `Quick
      test_macro_transform_none_on_unified;
    Alcotest.test_case "lockstep explicit cap" `Quick
      test_lockstep_explicit_cap;
    Alcotest.test_case "rng split independent" `Quick
      test_rng_split_independent;
    Alcotest.test_case "schedule pp renders" `Quick test_schedule_pp_renders;
    Alcotest.test_case "length opt noop on unified" `Quick
      test_length_opt_on_unified_is_noop;
    Alcotest.test_case "spill none when pressure fits" `Quick
      test_spill_none_when_pressure_fits;
    Alcotest.test_case "cross-path copies" `Quick test_cross_path_copies;
    Alcotest.test_case "cross-path not cheaper" `Quick
      test_cross_path_not_cheaper;
    Alcotest.test_case "graph pp stats" `Quick test_graph_pp_stats;
  ]
