(* The stateful model-based harness (Check.Model): random command
   sequences over the driver / suite / checkpoint API run against the
   real system and the in-memory fake.  Three angles: the real system
   passes; the shrinker is correct on a pure predicate; and a deliberate
   lie on the real side (sabotage) is caught and shrunk to the single
   lying command. *)

open Check.Model
open Alcotest

let failf fmt = Alcotest.failf fmt

let pp_cmds cmds = String.concat "; " (List.map cmd_to_string cmds)

let test_generated_sequences_valid () =
  List.iter
    (fun seed ->
      let cmds = gen_cmds (Workload.Rng.create seed) ~len:30 in
      check int "length" 30 (List.length cmds);
      if not (valid cmds) then failf "invalid generated sequence: %s" (pp_cmds cmds))
    [ 1; 2; 3; 4; 5 ]

(* first seed whose generated sequence satisfies [p] — generation is
   pure, so searching is free and pins coverage deterministically *)
let seed_where ~len p =
  let rec go s =
    if s > 2000 then failf "no seed under 2000 generates the wanted shape"
    else if p (gen_cmds (Workload.Rng.create s) ~len) then s
    else go (s + 1)
  in
  go 0

let test_real_system_passes () =
  (* force the deep path: a full suite run, a poison, a save/resume and
     a register sweep must all appear in the sequences we run *)
  let has p cmds = List.exists p cmds in
  let covering =
    seed_where ~len:10 (fun cmds ->
        has (function Run_suite _ -> true | _ -> false) cmds
        && has (function Resume -> true | _ -> false) cmds)
  in
  let sweeping =
    seed_where ~len:10 (fun cmds ->
        has (function Poison _ -> true | _ -> false) cmds
        && has (function Sweep _ -> true | _ -> false) cmds
        && has (function Schedule_direct _ -> true | _ -> false) cmds)
  in
  match Check.Model.check ~seeds:[ covering; sweeping; 11 ] ~len:10 () with
  | None -> ()
  | Some c ->
      failf "counterexample (seed %d): %s\nshrunk: %s\n%s" c.c_seed
        (pp_cmds c.c_cmds) (pp_cmds c.c_shrunk) c.c_msg

let test_minimize_pure_predicate () =
  (* fails iff the sequence contains both a Poison and a Resume; the
     minimal valid such sequence is Poison; Save; Resume (Save needs a
     manifest, Resume a saved one) *)
  let fails cmds =
    List.exists (function Poison _ -> true | _ -> false) cmds
    && List.exists (function Resume -> true | _ -> false) cmds
  in
  let cmds =
    [
      Run_loop { mode = 0; loop = 1 };
      Run_suite { jobs = 1 };
      Poison { loop = 2 };
      Save;
      Schedule_direct { loop = 0; regs = 32 };
      Resume;
      Run_loop { mode = 1; loop = 0 };
    ]
  in
  if not (valid cmds && fails cmds) then failf "bad fixture";
  let shrunk = minimize ~fails cmds in
  check int "minimal length" 3 (List.length shrunk);
  (match shrunk with
  | [ Poison _; Save; Resume ] -> ()
  | other -> failf "unexpected minimum: %s" (pp_cmds other));
  if not (valid shrunk && fails shrunk) then failf "minimum invalid or passing"

let test_sabotage_caught_and_shrunk () =
  (* find a seed whose sequence includes a Budget_timeout, then lie on
     the real side: the harness must fail and shrink to that command *)
  let rec seed_with_timeout s =
    if s > 500 then failf "no seed generates Budget_timeout?"
    else
      let cmds = gen_cmds (Workload.Rng.create s) ~len:8 in
      if List.exists (function Budget_timeout _ -> true | _ -> false) cmds
      then s
      else seed_with_timeout (s + 1)
  in
  let seed = seed_with_timeout 0 in
  match Check.Model.check ~sabotage:"ignore-budget" ~seeds:[ seed ] ~len:8 () with
  | None -> failf "sabotaged run passed"
  | Some c -> (
      match c.c_shrunk with
      | [ Budget_timeout _ ] -> ()
      | other -> failf "did not shrink to the lying command: %s" (pp_cmds other))

(* The serve-engine commands, exercised through a fixed sequence that
   walks every service path: cold request, warm re-request, evict +
   recompute, restart onto the disk tier, a pipelined burst, and the
   second mode — each reply held to the memoized direct-run bytes. *)
let test_serve_commands_pass () =
  let cmds =
    [
      Serve_request { mode = 0; loop = 0 };
      Serve_request { mode = 0; loop = 0 };
      Serve_evict { mode = 0; loop = 0 };
      Serve_request { mode = 0; loop = 0 };
      Serve_restart;
      Serve_request { mode = 0; loop = 0 };
      Serve_burst { reqs = [ (0, 1); (1, 0); (0, 0) ] };
      Serve_request { mode = 1; loop = 1 };
      Serve_restart;
      Serve_burst { reqs = [ (1, 1); (0, 1) ] };
      Serve_concurrent { mode = 0; loop = 2; n = 4 };
      Serve_concurrent { mode = 0; loop = 2; n = 3 };
      Serve_concurrent { mode = 1; loop = 2; n = 2 };
    ]
  in
  if not (valid cmds) then failf "bad fixture";
  match run_cmds cmds with
  | Ok () -> ()
  | Error f -> failf "serve sequence failed at %s: %s" (cmd_to_string f.x_cmd) f.x_msg

let test_serve_sabotage_caught_and_shrunk () =
  (* the serve-starve lie staples a zero-attempt budget to every serve
     request on the real side, so the first cold request degrades to a
     timeout reply instead of the direct-run bytes; the counterexample
     must shrink to a single serve command *)
  let is_serve = function
    | Serve_request _ | Serve_burst _ -> true
    | _ -> false
  in
  let rec seed_with_serve s =
    if s > 500 then failf "no seed generates a serve command?"
    else if List.exists is_serve (gen_cmds (Workload.Rng.create s) ~len:8)
    then s
    else seed_with_serve (s + 1)
  in
  let seed = seed_with_serve 0 in
  match Check.Model.check ~sabotage:"serve-starve" ~seeds:[ seed ] ~len:8 () with
  | None -> failf "sabotaged serve run passed"
  | Some c -> (
      match c.c_shrunk with
      | [ cmd ] when is_serve cmd -> ()
      | other -> failf "did not shrink to one serve command: %s" (pp_cmds other))

let test_coalesce_lie_caught_and_shrunk () =
  (* the coalesce-lie sabotage makes the worker-pool engine appear to
     answer every coalesced waiter with the leader's reply (the leader's
     id stamped on all n elements): the per-id byte equality must fail
     and shrink to one concurrent command *)
  let is_cc = function Serve_concurrent _ -> true | _ -> false in
  let rec seed_with_cc s =
    if s > 2000 then failf "no seed generates Serve_concurrent?"
    else if List.exists is_cc (gen_cmds (Workload.Rng.create s) ~len:8) then s
    else seed_with_cc (s + 1)
  in
  let seed = seed_with_cc 0 in
  match Check.Model.check ~sabotage:"coalesce-lie" ~seeds:[ seed ] ~len:8 () with
  | None -> failf "coalesce-lying run passed"
  | Some c -> (
      match c.c_shrunk with
      | [ Serve_concurrent _ ] -> ()
      | other -> failf "did not shrink to the lying command: %s" (pp_cmds other))

(* The exact-oracle command: a fixed sequence that re-observes the same
   (mode, loop) pair (pinning determinism of both IIs and the proven
   bit), crosses modes on one loop, and interleaves a plain run. *)
let test_exact_gap_commands_pass () =
  let cmds =
    [
      Exact_gap { mode = 0; loop = 0 };
      Exact_gap { mode = 0; loop = 0 };
      Run_loop { mode = 0; loop = 0 };
      Exact_gap { mode = 1; loop = 0 };
      Exact_gap { mode = 0; loop = 1 };
      Exact_gap { mode = 1; loop = 0 };
    ]
  in
  if not (valid cmds) then failf "bad fixture";
  match run_cmds cmds with
  | Ok () -> ()
  | Error f ->
      failf "exact-gap sequence failed at %s: %s" (cmd_to_string f.x_cmd)
        f.x_msg

let test_gap_lie_caught_and_shrunk () =
  (* the gap-lie sabotage reports an exact II one above the heuristic
     II: the non-negative-gap postcondition must fail and shrink to the
     single lying command *)
  let is_gap = function Exact_gap _ -> true | _ -> false in
  let rec seed_with_gap s =
    if s > 2000 then failf "no seed generates Exact_gap?"
    else if List.exists is_gap (gen_cmds (Workload.Rng.create s) ~len:8)
    then s
    else seed_with_gap (s + 1)
  in
  let seed = seed_with_gap 0 in
  match Check.Model.check ~sabotage:"gap-lie" ~seeds:[ seed ] ~len:8 () with
  | None -> failf "gap-lying run passed"
  | Some c -> (
      match c.c_shrunk with
      | [ Exact_gap _ ] -> ()
      | other -> failf "did not shrink to the lying command: %s" (pp_cmds other))

let suite =
  [
    test_case "generated sequences are valid" `Quick
      test_generated_sequences_valid;
    test_case "real system satisfies the model" `Slow test_real_system_passes;
    test_case "minimize reaches the minimal valid sequence" `Quick
      test_minimize_pure_predicate;
    test_case "sabotage is caught and shrunk to one command" `Slow
      test_sabotage_caught_and_shrunk;
    test_case "serve commands satisfy the model" `Slow
      test_serve_commands_pass;
    test_case "serve sabotage is caught and shrunk" `Slow
      test_serve_sabotage_caught_and_shrunk;
    test_case "coalesce lying is caught and shrunk" `Slow
      test_coalesce_lie_caught_and_shrunk;
    test_case "exact-gap commands satisfy the model" `Slow
      test_exact_gap_commands_pass;
    test_case "gap lying is caught and shrunk" `Slow
      test_gap_lie_caught_and_shrunk;
  ]
