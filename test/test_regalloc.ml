(* Register allocation: modulo-variable-expansion interval colouring. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let unified = Machine.Config.unified ~registers:64
let config4c = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64

let schedule config g =
  match Sched.Driver.schedule_loop config g with
  | Ok o -> o.Sched.Driver.schedule
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)

let test_allocates_chain () =
  let s = schedule unified (Ddg.Examples.tiny_chain ~n:5 ()) in
  let alloc = Sched.Regalloc.allocate_exn s in
  check bool "verified" true (Result.is_ok (Sched.Regalloc.verify s alloc));
  (* 5 values: even the last node's (unused) result occupies its
     definition cycle, matching the Regpressure model *)
  check int "intervals" 5 (List.length alloc.Sched.Regalloc.intervals);
  check bool "uses at least maxlive" true
    (alloc.Sched.Regalloc.used_per_cluster.(0)
    >= Sched.Regpressure.max_pressure s)

let test_allocates_clustered_with_copies () =
  let s = schedule config4c (Ddg.Examples.figure3 ()) in
  let alloc = Sched.Regalloc.allocate_exn s in
  check bool "verified" true (Result.is_ok (Sched.Regalloc.verify s alloc));
  List.iter
    (fun itv ->
      check bool "instances >= 1" true (itv.Sched.Regalloc.instances >= 1);
      check int "one register per instance" itv.Sched.Regalloc.instances
        (List.length itv.Sched.Regalloc.registers);
      check bool "lifetime positive" true
        (itv.Sched.Regalloc.end_cycle > itv.Sched.Regalloc.start_cycle))
    alloc.Sched.Regalloc.intervals

let test_mve_instances () =
  (* a value consumed two iterations later needs >= 3 overlapping
     instances at II=1 (lifetime >= 2*II) *)
  let b = Ddg.Graph.Builder.create () in
  let x = Ddg.Graph.Builder.add b Machine.Opclass.Int_arith in
  let y = Ddg.Graph.Builder.add b Machine.Opclass.Int_arith in
  Ddg.Graph.Builder.depend b ~distance:2 ~src:x ~dst:y;
  Ddg.Graph.Builder.depend b ~distance:1 ~src:x ~dst:x;
  let g = Ddg.Graph.Builder.build b in
  let s = schedule unified g in
  let alloc = Sched.Regalloc.allocate_exn s in
  let x_itv =
    List.find (fun i -> i.Sched.Regalloc.producer = x)
      alloc.Sched.Regalloc.intervals
  in
  check bool "multiple instances" true (x_itv.Sched.Regalloc.instances >= 2)

let test_allocation_failure_on_tiny_file () =
  (* 2 registers cannot hold a long fp dependence chain's overlapping
     lifetimes at a small II *)
  let tiny =
    Machine.Config.custom ~clusters:1 ~buses:0 ~bus_latency:0 ~registers:2
      ~fus_per_cluster:(4, 4, 4)
  in
  let b = Ddg.Graph.Builder.create () in
  let prev = ref None in
  for _ = 1 to 8 do
    let v = Ddg.Graph.Builder.add b Machine.Opclass.Fp_arith in
    (match !prev with
    | Some p -> Ddg.Graph.Builder.depend b ~src:p ~dst:v
    | None -> ());
    prev := Some v
  done;
  let g = Ddg.Graph.Builder.build b in
  (* bypass the driver's own register gate by scheduling on a larger
     machine, then allocating for the tiny file via a fake schedule -
     simpler: allocate the unified schedule against the tiny config by
     rebuilding the schedule record. *)
  let s = schedule unified g in
  let s_tiny = { s with Sched.Schedule.config = tiny } in
  check bool "allocation fails" true
    (Result.is_error (Sched.Regalloc.allocate s_tiny))

let test_driver_accepted_schedules_mostly_allocate () =
  (* on the real workload, schedules accepted by the MaxLive gate get a
     concrete allocation (first-fit may need a couple of extra registers
     on cyclic intervals, but 64 registers leave ample headroom) *)
  let loops = Workload.Generator.generate (Workload.Benchmark.find "hydro2d") in
  let rec take k = function
    | [] -> [] | _ when k = 0 -> [] | x :: tl -> x :: take (k - 1) tl
  in
  List.iter
    (fun (l : Workload.Generator.loop) ->
      let s = schedule config4c l.graph in
      match Sched.Regalloc.allocate s with
      | Ok alloc ->
          check bool "verified" true
            (Result.is_ok (Sched.Regalloc.verify s alloc))
      | Error e ->
          (* greedy circular-arc colouring may need a couple more
             registers than MaxLive; only a failure with real headroom
             would be a bug *)
          let limit = Machine.Config.registers_per_cluster config4c in
          if Sched.Regpressure.max_pressure s <= limit - 3 then
            Alcotest.failf "%s: %s (maxlive %d, limit %d)" l.id (Sched.Sched_error.to_string e)
              (Sched.Regpressure.max_pressure s) limit)
    (take 10 loops)

let suite =
  [
    Alcotest.test_case "allocates chain" `Quick test_allocates_chain;
    Alcotest.test_case "allocates clustered with copies" `Quick
      test_allocates_clustered_with_copies;
    Alcotest.test_case "mve instances" `Quick test_mve_instances;
    Alcotest.test_case "fails on tiny register file" `Quick
      test_allocation_failure_on_tiny_file;
    Alcotest.test_case "workload schedules allocate" `Quick
      test_driver_accepted_schedules_mostly_allocate;
  ]
