(* Functional register-level simulation: dataflow through the actual
   register assignment, including MVE rotation. *)

let check = Alcotest.check
let bool = Alcotest.bool

let config4c = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64
let unified = Machine.Config.unified ~registers:64

let scheduled config g =
  match Sched.Driver.schedule_loop config g with
  | Ok o -> o.Sched.Driver.schedule
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)

let test_examples_flow () =
  List.iter
    (fun g ->
      List.iter
        (fun config ->
          let s = scheduled config g in
          match Sched.Regalloc.allocate s with
          | Error _ -> () (* nothing to simulate *)
          | Ok alloc -> (
              match Sim.Regsim.run s alloc ~iterations:50 with
              | Ok r ->
                  check bool "checked some reads" true
                    (r.Sim.Regsim.reads_checked > 0);
                  check bool "performed writes" true (r.Sim.Regsim.writes > 0)
              | Error e -> Alcotest.failf "regsim: %s" e))
        [ unified; config4c ])
    [
      Ddg.Examples.figure3 ();
      Ddg.Examples.with_recurrence ();
      Ddg.Examples.tiny_chain ~n:6 ();
    ]

let test_replicated_graph_flow () =
  let g = Ddg.Examples.figure3 () in
  let tr, _ = Replication.Replicate.transform () in
  match Sched.Driver.schedule_loop ~transform:tr config4c g with
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)
  | Ok o -> (
      let s = o.Sched.Driver.schedule in
      match Sched.Regalloc.allocate s with
      | Error _ -> ()
      | Ok alloc ->
          check bool "replicated dataflow ok" true
            (Result.is_ok (Sim.Regsim.run s alloc ~iterations:30)))

let test_catches_corrupted_allocation () =
  let s = scheduled config4c (Ddg.Examples.figure3 ()) in
  let alloc = Sched.Regalloc.allocate_exn s in
  (* Collapse every interval of cluster 0 onto register 0: values now
     clobber each other and the simulator must notice. *)
  let sabotage (itv : Sched.Regalloc.interval) =
    if itv.Sched.Regalloc.cluster = 0 then
      { itv with Sched.Regalloc.registers =
          List.map (fun _ -> 0) itv.Sched.Regalloc.registers }
    else itv
  in
  let bad =
    { alloc with Sched.Regalloc.intervals =
        List.map sabotage alloc.Sched.Regalloc.intervals }
  in
  let collapsed =
    List.exists
      (fun (i : Sched.Regalloc.interval) ->
        i.Sched.Regalloc.cluster = 0)
      alloc.Sched.Regalloc.intervals
  in
  if collapsed then begin
    check bool "verify flags it" true
      (Result.is_error (Sched.Regalloc.verify s bad)
      || Result.is_error (Sim.Regsim.run s bad ~iterations:30))
  end

let test_workload_sample_flow () =
  let rec take k = function
    | [] -> [] | _ when k = 0 -> [] | x :: tl -> x :: take (k - 1) tl
  in
  List.iter
    (fun (l : Workload.Generator.loop) ->
      let s = scheduled config4c l.graph in
      match Sched.Regalloc.allocate s with
      | Error _ -> ()
      | Ok alloc -> (
          match Sim.Regsim.run s alloc ~iterations:25 with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s: %s" l.id e))
    (take 8 (Workload.Generator.generate (Workload.Benchmark.find "apsi")))

let suite =
  [
    Alcotest.test_case "examples flow" `Quick test_examples_flow;
    Alcotest.test_case "replicated graph flow" `Quick
      test_replicated_graph_flow;
    Alcotest.test_case "catches corrupted allocation" `Quick
      test_catches_corrupted_allocation;
    Alcotest.test_case "workload sample flow" `Quick
      test_workload_sample_flow;
  ]
