(* The replication pass: state, Figure-4 subgraphs, Figure-5 removable
   sets, Section-3.3 weights (checked against the paper's own worked
   numbers), selection, materialization, and the Section-5 variants. *)

open Replication
module Iset = State.Iset

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* The paper's running example: 4 clusters with 4 universal FUs each
   (we use integer units since every Figure-3 op is integer), one
   1-cycle bus, II = 2. *)
let example_config =
  Machine.Config.custom ~clusters:4 ~buses:1 ~bus_latency:1 ~registers:64
    ~fus_per_cluster:(4, 0, 0)

let example () =
  let g = Ddg.Examples.figure3 () in
  let assign = Ddg.Examples.figure3_partition g in
  let state = State.create example_config g ~assign in
  (g, state)

let node g l = Ddg.Graph.find_label g l
let labels g ids = List.map (Ddg.Graph.label g) ids

(* ---------------- state ---------------- *)

let test_state_initial () =
  let g, state = example () in
  check int "three comms" 3 (State.n_comms state);
  check (Alcotest.list Alcotest.string) "comms are D,E,J" [ "D"; "E"; "J" ]
    (labels g (State.comms state));
  check int "instances = nodes" (Ddg.Graph.n_nodes g) (State.n_instances state);
  check int "extra at ii=2" 1 (State.extra_coms state ~ii:2);
  check int "usage cluster 3" 5
    (State.usage state ~cluster:2 ~kind:Machine.Fu.Int)

let test_state_needing () =
  let g, state = example () in
  check (Alcotest.list int) "E needed in 2,4(paper) = 1,3" [ 1; 3 ]
    (Iset.elements (State.needing state (node g "E")));
  check (Alcotest.list int) "D needed in 4 = 3" [ 3 ]
    (Iset.elements (State.needing state (node g "D")));
  check (Alcotest.list int) "A local" []
    (Iset.elements (State.needing state (node g "A")))

let test_state_add_remove () =
  let g, state = example () in
  let e = node g "E" in
  State.add_instance state ~node:e ~cluster:1;
  State.add_instance state ~node:e ~cluster:1;
  check int "idempotent add" 2 (Iset.cardinal (State.placement state e));
  check int "usage grew" 4 (State.usage state ~cluster:1 ~kind:Machine.Fu.Int);
  State.remove_instance state ~node:e ~cluster:1;
  check int "removed" 1 (Iset.cardinal (State.placement state e));
  check int "usage back" 3 (State.usage state ~cluster:1 ~kind:Machine.Fu.Int)

let test_state_copy_independent () =
  let g, state = example () in
  let snapshot = State.copy state in
  State.add_instance state ~node:(node g "A") ~cluster:0;
  check int "copy untouched" 1
    (Iset.cardinal (State.placement snapshot (node g "A")))

(* ---------------- subgraphs (Figure 4) ---------------- *)

let test_subgraph_members_paper () =
  let g, state = example () in
  let s_d = Subgraph.compute state (node g "D") in
  check (Alcotest.list Alcotest.string) "S_D = {A,B,C,D}"
    [ "A"; "B"; "C"; "D" ] (labels g s_d.Subgraph.members);
  let s_e = Subgraph.compute state (node g "E") in
  check (Alcotest.list Alcotest.string) "S_E = {A,E}" [ "A"; "E" ]
    (labels g s_e.Subgraph.members);
  let s_j = Subgraph.compute state (node g "J") in
  check (Alcotest.list Alcotest.string) "S_J = {I,J}" [ "I"; "J" ]
    (labels g s_j.Subgraph.members)

let test_subgraph_stops_at_communicated_values () =
  (* D is in S_E's ancestry but communicated, so excluded (paper: "the
     value produced by D has already been communicated"). *)
  let g, state = example () in
  let s_e = Subgraph.compute state (node g "E") in
  check bool "D not in S_E" false
    (List.mem (node g "D") s_e.Subgraph.members)

let test_subgraph_removable_e () =
  (* replicating S_E into clusters 2,4 strands the original E (its only
     consumers J and G read local replicas). *)
  let g, state = example () in
  let s_e = Subgraph.compute state (node g "E") in
  check (Alcotest.list Alcotest.string) "removable = {E}" [ "E" ]
    (labels g s_e.Subgraph.removable);
  let s_d = Subgraph.compute state (node g "D") in
  check (Alcotest.list Alcotest.string) "S_D strands nothing" []
    (labels g s_d.Subgraph.removable)

let test_subgraph_additions () =
  let g, state = example () in
  let s_e = Subgraph.compute state (node g "E") in
  List.iter
    (fun (v, cs) ->
      check (Alcotest.list int)
        (Printf.sprintf "%s added to 1,3" (Ddg.Graph.label g v))
        [ 1; 3 ] (Iset.elements cs))
    s_e.Subgraph.additions;
  check int "4 instances" 4 (Subgraph.n_added_instances s_e)

let test_subgraph_requires_comm () =
  let g, state = example () in
  check bool "raises on non-comm" true
    (try ignore (Subgraph.compute state (node g "A")); false
     with Invalid_argument _ -> true)

let test_subgraph_update_rules () =
  (* Section 3.4, reproduced exactly on the running example: after
     replicating S_E, (1) S_D must also reach cluster 2, (2) S_J grows
     with E and A, (3) already-present copies are not re-added, and
     D,B,C,A become removable from cluster 3 if S_D is replicated. *)
  let g, state = example () in
  let s_e = Subgraph.compute state (node g "E") in
  (match Replicate.select state ~ii:2 ~extra:1 with
  | Some [ chosen ] ->
      check bool "S_E selected first" true
        (chosen.Subgraph.com = s_e.Subgraph.com)
  | _ -> Alcotest.fail "expected exactly one replication");
  (* rule 1: D's communication now also targets cluster 2 *)
  check (Alcotest.list int) "D targets 2 and 4" [ 1; 3 ]
    (Iset.elements (State.needing state (node g "D")));
  (* rule 2: S_J grows to {J,I,E,A} *)
  let s_j = Subgraph.compute state (node g "J") in
  check (Alcotest.list Alcotest.string) "S_J grown" [ "A"; "E"; "I"; "J" ]
    (labels g s_j.Subgraph.members);
  (* rule 3: E and A already live in cluster 4, so S_J only adds them in
     cluster 1 *)
  List.iter
    (fun (v, cs) ->
      let lbl = Ddg.Graph.label g v in
      if lbl = "E" || lbl = "A" then
        check (Alcotest.list int) (lbl ^ " only to cluster 1") [ 0 ]
          (Iset.elements cs))
    s_j.Subgraph.additions;
  (* removable update: replicating S_D would now strand D,B,C,A *)
  let s_d = Subgraph.compute state (node g "D") in
  check (Alcotest.list Alcotest.string) "D,B,C,A removable"
    [ "A"; "B"; "C"; "D" ] (labels g s_d.Subgraph.removable)

(* ---------------- weights (Section 3.3 worked numbers) ----------- *)

let weights () =
  let g, state = example () in
  let subs = List.map (Subgraph.compute state) (State.comms state) in
  let w lbl =
    let s =
      List.find (fun s -> s.Subgraph.com = node g lbl) subs
    in
    Weight.subgraph_weight state ~ii:2 ~all:subs s
  in
  (w "D", w "E", w "J")

let test_weight_paper_values () =
  let wd, we, wj = weights () in
  (* the paper's own arithmetic: S_D = 49/16, S_J = 40/16; S_E = 27/16
     by the printed formula (the figure's "31/16" does not match its own
     terms; see DESIGN.md). *)
  check (Alcotest.float 1e-9) "weight S_D" (49. /. 16.) wd;
  check (Alcotest.float 1e-9) "weight S_J" (40. /. 16.) wj;
  check (Alcotest.float 1e-9) "weight S_E" (27. /. 16.) we;
  check bool "S_E cheapest" true (we < wd && we < wj)

let test_weight_share_discount () =
  let g, state = example () in
  let subs = List.map (Subgraph.compute state) (State.comms state) in
  (* A is shared by S_D and S_E in cluster 4 *)
  check int "share of A in cluster 4" 2
    (Weight.share ~all:subs ~node:(node g "A") ~cluster:3);
  check int "share of A in cluster 2" 1
    (Weight.share ~all:subs ~node:(node g "A") ~cluster:1);
  let s_d = List.find (fun s -> s.Subgraph.com = node g "D") subs in
  let with_share = Weight.subgraph_weight state ~ii:2 ~all:subs s_d in
  let without =
    Weight.subgraph_weight ~share_discount:false state ~ii:2 ~all:subs s_d
  in
  (* without the discount, A's full 7/8 is charged: 56/16 *)
  check (Alcotest.float 1e-9) "no discount" (56. /. 16.) without;
  check bool "discount lowers" true (with_share < without)

let test_weight_removable_credit () =
  let g, state = example () in
  let subs = List.map (Subgraph.compute state) (State.comms state) in
  let s_e = List.find (fun s -> s.Subgraph.com = node g "E") subs in
  let with_credit = Weight.subgraph_weight state ~ii:2 ~all:subs s_e in
  let without =
    Weight.subgraph_weight ~removable_credit:false state ~ii:2 ~all:subs s_e
  in
  check (Alcotest.float 1e-9) "credit is 4/8" (8. /. 16.)
    (without -. with_credit)

(* ---------------- feasibility ---------------- *)

let test_feasibility_blocks_overflow () =
  let g = Ddg.Examples.figure3 () in
  let assign = Ddg.Examples.figure3_partition g in
  (* 1 universal FU per cluster: at II=2 a cluster holds 2 ops; any
     replication overflows. *)
  let tight =
    Machine.Config.custom ~clusters:4 ~buses:1 ~bus_latency:1 ~registers:64
      ~fus_per_cluster:(1, 0, 0)
  in
  let state = State.create tight g ~assign in
  let subs = List.map (Subgraph.compute state) (State.comms state) in
  check bool "nothing feasible" true
    (List.for_all (fun s -> not (Subgraph.feasible state ~ii:2 s)) subs)

(* ---------------- run / materialize ---------------- *)

let test_run_removes_excess () =
  let g = Ddg.Examples.figure3 () in
  let assign = Ddg.Examples.figure3_partition g in
  match Replicate.run example_config g ~assign ~ii:2 with
  | None -> Alcotest.fail "replication expected"
  | Some o ->
      check int "one comm removed" 1 o.Replicate.stats.Replicate.comms_removed;
      check int "comms before" 3 o.Replicate.stats.Replicate.comms_before;
      check int "two comms remain" 2
        (Sched.Comm.count o.Replicate.graph ~assign:o.Replicate.assign);
      check int "four replicas, one removed" (14 + 4 - 1)
        (Ddg.Graph.n_nodes o.Replicate.graph);
      (* materialized graph must be well-formed and schedulable *)
      (match
         Sched.Driver.schedule_loop example_config o.Replicate.graph
       with
      | Ok out -> Sim.Checker.check_exn out.Sched.Driver.schedule
      | Error e -> Alcotest.failf "schedule failed: %s" (Sched.Sched_error.to_string e));
      (* replica bookkeeping *)
      let replicas = Array.to_list o.Replicate.is_replica in
      check int "replica count" 4
        (List.length (List.filter Fun.id replicas))

let test_run_no_excess_is_none () =
  let g = Ddg.Examples.figure3 () in
  let assign = Ddg.Examples.figure3_partition g in
  check bool "none at ii=3" true
    (Replicate.run example_config g ~assign ~ii:3 = None);
  check bool "none on unified" true
    (Replicate.run (Machine.Config.unified ~registers:64) g
       ~assign:(Array.make 14 0) ~ii:1
    = None)

let test_transform_stats_ref () =
  let g = Ddg.Examples.figure3 () in
  let tr, stats = Replicate.transform () in
  let assign = Ddg.Examples.figure3_partition g in
  (match tr example_config g ~assign ~ii:2 with
  | Some _ -> check bool "stats present" true (!stats <> None)
  | None -> Alcotest.fail "transform expected");
  (match tr example_config g ~assign ~ii:3 with
  | None -> check bool "stats cleared" true (!stats = None)
  | Some _ -> Alcotest.fail "no transform expected")

let test_driver_with_replication_not_worse () =
  let g = Ddg.Examples.figure3 () in
  let tr, _ = Replicate.transform () in
  let base = Result.get_ok (Sched.Driver.schedule_loop example_config g) in
  let repl =
    Result.get_ok (Sched.Driver.schedule_loop ~transform:tr example_config g)
  in
  check bool "replication ii <= baseline ii" true
    (repl.Sched.Driver.ii <= base.Sched.Driver.ii)

(* ---------------- Section 5.1 ---------------- *)

let test_length_opt_never_worse () =
  let g = Ddg.Examples.figure11 () in
  let config =
    Machine.Config.custom ~clusters:3 ~buses:1 ~bus_latency:1 ~registers:60
      ~fus_per_cluster:(2, 0, 0)
  in
  match Sched.Driver.schedule_loop config g with
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)
  | Ok o ->
      let o', st = Length_opt.improve config o in
      check bool "same ii" true (o'.Sched.Driver.ii = o.Sched.Driver.ii);
      check bool "length not worse" true
        (Sched.Schedule.length o'.Sched.Driver.schedule
        <= Sched.Schedule.length o.Sched.Driver.schedule);
      check bool "cycles saved consistent" true
        (st.Length_opt.cycles_saved
        = Sched.Schedule.length o.Sched.Driver.schedule
          - Sched.Schedule.length o'.Sched.Driver.schedule);
      Sim.Checker.check_exn o'.Sched.Driver.schedule

(* ---------------- Section 5.2 ---------------- *)

let test_macro_cone_is_superset () =
  let g, state = example () in
  let d = node g "D" in
  let cone = Macro.cone state d in
  let s_d = Subgraph.compute state d in
  check bool "cone includes minimal subgraph" true
    (List.for_all (fun v -> List.mem v cone) s_d.Subgraph.members);
  (* the cone also drags in E's ancestors? no - D's ancestors: A,B,C
     (all in cluster 3). Unlike Figure 4 it would include communicated
     parents in the same cluster. *)
  check (Alcotest.list Alcotest.string) "cone of D" [ "A"; "B"; "C"; "D" ]
    (labels g cone)

let test_macro_cone_includes_communicated_parents () =
  (* J's cone contains I; E is in another cluster so it stops there, but
     a same-cluster communicated parent would be included (unlike the
     minimal subgraph).  Build a dedicated case: x -> y, both cluster 0,
     both communicated. *)
  let b = Ddg.Graph.Builder.create () in
  let x = Ddg.Graph.Builder.add b ~label:"x" Machine.Opclass.Int_arith in
  let y = Ddg.Graph.Builder.add b ~label:"y" Machine.Opclass.Int_arith in
  let ux = Ddg.Graph.Builder.add b ~label:"ux" Machine.Opclass.Int_arith in
  let uy = Ddg.Graph.Builder.add b ~label:"uy" Machine.Opclass.Int_arith in
  Ddg.Graph.Builder.depend b ~src:x ~dst:y;
  Ddg.Graph.Builder.depend b ~src:x ~dst:ux;
  Ddg.Graph.Builder.depend b ~src:y ~dst:uy;
  let g = Ddg.Graph.Builder.build b in
  let config = Machine.Config.make ~clusters:2 ~buses:1 ~bus_latency:2 ~registers:64 in
  let state = State.create config g ~assign:[| 0; 0; 1; 1 |] in
  let cone_y = Macro.cone state y in
  let sub_y = (Subgraph.compute state y).Subgraph.members in
  check bool "cone keeps communicated parent x" true (List.mem x cone_y);
  check bool "minimal subgraph drops x" false (List.mem x sub_y)

let suite =
  [
    Alcotest.test_case "state initial" `Quick test_state_initial;
    Alcotest.test_case "state needing" `Quick test_state_needing;
    Alcotest.test_case "state add/remove" `Quick test_state_add_remove;
    Alcotest.test_case "state copy independent" `Quick
      test_state_copy_independent;
    Alcotest.test_case "subgraph members (paper)" `Quick
      test_subgraph_members_paper;
    Alcotest.test_case "subgraph stops at comms" `Quick
      test_subgraph_stops_at_communicated_values;
    Alcotest.test_case "subgraph removable E" `Quick
      test_subgraph_removable_e;
    Alcotest.test_case "subgraph additions" `Quick test_subgraph_additions;
    Alcotest.test_case "subgraph requires comm" `Quick
      test_subgraph_requires_comm;
    Alcotest.test_case "update rules (s3.4)" `Quick
      test_subgraph_update_rules;
    Alcotest.test_case "weights match the paper" `Quick
      test_weight_paper_values;
    Alcotest.test_case "sharing discount" `Quick test_weight_share_discount;
    Alcotest.test_case "removable credit" `Quick test_weight_removable_credit;
    Alcotest.test_case "feasibility blocks overflow" `Quick
      test_feasibility_blocks_overflow;
    Alcotest.test_case "run removes excess" `Quick test_run_removes_excess;
    Alcotest.test_case "run none without excess" `Quick
      test_run_no_excess_is_none;
    Alcotest.test_case "transform stats ref" `Quick test_transform_stats_ref;
    Alcotest.test_case "driver with replication not worse" `Quick
      test_driver_with_replication_not_worse;
    Alcotest.test_case "length opt never worse" `Quick
      test_length_opt_never_worse;
    Alcotest.test_case "macro cone superset" `Quick
      test_macro_cone_is_superset;
    Alcotest.test_case "macro cone keeps communicated parents" `Quick
      test_macro_cone_includes_communicated_parents;
  ]
