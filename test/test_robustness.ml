(* The fault-isolation layer: pool fault capture, escalation budgets,
   error classification, quarantine, and checkpoint/resume. *)

open Alcotest

let config4c = Option.get (Machine.Config.of_name "4c1b2l64r")

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let tomcatv_loops =
  lazy (take 4 (Workload.Generator.generate (Workload.Benchmark.find "tomcatv")))

(* ------------------------------------------------------------------ *)
(* Pool fault capture                                                   *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let test_pool_fault_metadata () =
  Printexc.record_backtrace true;
  List.iter
    (fun jobs ->
      match
        Metrics.Pool.map ~jobs
          (fun x -> if x mod 5 = 3 then raise (Boom x) else x)
          (List.init 16 Fun.id)
      with
      | _ -> failf "jobs=%d: expected Fault" jobs
      | exception Metrics.Pool.Fault f ->
          check int (Printf.sprintf "jobs=%d index" jobs) 3 f.Metrics.Pool.index;
          (match f.Metrics.Pool.exn with
          | Boom 3 -> ()
          | e -> failf "jobs=%d: wrong exn %s" jobs (Printexc.to_string e));
          check bool
            (Printf.sprintf "jobs=%d backtrace captured" jobs)
            true
            (String.length f.Metrics.Pool.backtrace > 0))
    [ 1; 2 ]

let test_pool_map_result () =
  List.iter
    (fun jobs ->
      let results =
        Metrics.Pool.map_result ~jobs
          (fun x -> if x mod 2 = 0 then x * 10 else raise (Boom x))
          [ 0; 1; 2; 3 ]
      in
      match results with
      | [ Ok 0; Error f1; Ok 20; Error f3 ] ->
          check int "first fault index" 1 f1.Metrics.Pool.index;
          check int "second fault index" 3 f3.Metrics.Pool.index
      | _ -> failf "jobs=%d: unexpected shape" jobs)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Budgets                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_attempts () =
  let g = Ddg.Examples.figure3 () in
  let budget = Sched.Budget.make ~max_attempts:0 () in
  match Sched.Driver.schedule_loop ~budget config4c g with
  | Ok _ -> fail "expected timeout"
  | Error (Sched.Sched_error.Timeout { at_ii; attempts; _ }) ->
      check int "stopped before the first attempt" 0 attempts;
      check bool "at the MII level" true (at_ii >= 1)
  | Error e -> failf "unexpected class %s" (Sched.Sched_error.class_name e)

let test_budget_fake_clock () =
  (* an injected clock that jumps 10 s per reading trips a 5 s budget at
     the first level, deterministically *)
  let t = ref 0. in
  let clock () =
    t := !t +. 10.;
    !t
  in
  let budget = Sched.Budget.make ~wall_seconds:5. ~clock () in
  let g = Ddg.Examples.figure3 () in
  match Sched.Driver.schedule_loop ~budget config4c g with
  | Ok _ -> fail "expected timeout"
  | Error (Sched.Sched_error.Timeout { elapsed_s; _ }) ->
      check bool "elapsed measured" true (elapsed_s > 5.)
  | Error e -> failf "unexpected class %s" (Sched.Sched_error.class_name e)

let test_budget_generous_is_ok () =
  let g = Ddg.Examples.figure3 () in
  let budget = Sched.Budget.make ~wall_seconds:3600. ~max_attempts:10_000 () in
  match Sched.Driver.schedule_loop ~budget config4c g with
  | Ok _ -> ()
  | Error e -> failf "unexpected failure: %s" (Sched.Sched_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Error classification                                                 *)
(* ------------------------------------------------------------------ *)

let test_internal_from_raising_transform () =
  let g = Ddg.Examples.figure3 () in
  let bomb _config _g ~assign:_ ~ii:_ = failwith "kaboom" in
  match Sched.Driver.schedule_loop ~transform:bomb config4c g with
  | Ok _ -> fail "expected failure"
  | Error (Sched.Sched_error.Internal msg) ->
      check bool "carries the message" true
        (Metrics.Experiment.contains msg ~sub:"kaboom")
  | Error e -> failf "unexpected class %s" (Sched.Sched_error.class_name e)

let test_exit_codes_stable () =
  let open Sched.Sched_error in
  List.iter
    (fun (e, code, bug, give_up) ->
      check int (class_name e ^ " exit code") code (exit_code e);
      check bool (class_name e ^ " is_bug") bug (is_bug e);
      check bool (class_name e ^ " is_give_up") give_up (is_give_up e))
    [
      (Infeasible_partition { mii = 4; cap = 2 }, 10, false, true);
      (Escalation_cap { mii = 4; cap = 8 }, 11, false, true);
      (Register_pressure { cluster = 0; needed = 9; limit = 8 }, 12, false, true);
      (Bus_saturation { communications = 3; buses = 0 }, 13, false, true);
      (Timeout { at_ii = 5; attempts = 2; elapsed_s = 1.5 }, 14, false, false);
      (Checker_violation [ "x" ], 20, true, false);
      (Internal "x", 21, true, false);
    ]

(* ------------------------------------------------------------------ *)
(* Quarantine                                                           *)
(* ------------------------------------------------------------------ *)

let test_quarantine_poisoned_loop () =
  let loops = Lazy.force tomcatv_loops in
  let victim = (List.nth loops 1).Workload.Generator.id in
  List.iter
    (fun jobs ->
      let iso =
        Metrics.Experiment.run_suite_isolated ~jobs ~poison:[ victim ]
          Metrics.Experiment.Baseline config4c loops
      in
      check int
        (Printf.sprintf "jobs=%d quarantined" jobs)
        1
        (List.length iso.Metrics.Experiment.iso_quarantined);
      let q = List.hd iso.Metrics.Experiment.iso_quarantined in
      check string
        (Printf.sprintf "jobs=%d victim named" jobs)
        victim q.Metrics.Experiment.q_loop.Workload.Generator.id;
      check string
        (Printf.sprintf "jobs=%d class" jobs)
        "internal"
        (Sched.Sched_error.class_name q.Metrics.Experiment.q_error);
      check bool
        (Printf.sprintf "jobs=%d not retried" jobs)
        false q.Metrics.Experiment.q_retried;
      check int
        (Printf.sprintf "jobs=%d partial results" jobs)
        (List.length loops - 1)
        (List.length iso.Metrics.Experiment.iso_runs))
    [ 1; 2 ]

let test_quarantine_retry_marks () =
  let loops = Lazy.force tomcatv_loops in
  let victim = (List.nth loops 0).Workload.Generator.id in
  let iso =
    Metrics.Experiment.run_suite_isolated ~retry:true ~poison:[ victim ]
      Metrics.Experiment.Baseline config4c loops
  in
  match iso.Metrics.Experiment.iso_quarantined with
  | [ q ] ->
      check bool "survived the retry" true q.Metrics.Experiment.q_retried
  | qs -> failf "expected one quarantined loop, got %d" (List.length qs)

(* ------------------------------------------------------------------ *)
(* Backoff                                                              *)
(* ------------------------------------------------------------------ *)

(* With jitter disabled the delay is exactly the capped exponential,
   and [pause] feeds each one to the injected sleep — the whole
   schedule asserted against a recording fake, no real waiting. *)
let test_backoff_exact_schedule () =
  let slept = ref [] in
  let b =
    Metrics.Backoff.make ~base_s:0.1 ~factor:2.0 ~max_s:0.5 ~jitter:0.0
      ~sleep:(fun d -> slept := d :: !slept)
      ()
  in
  List.iter (fun k -> Metrics.Backoff.pause b ~attempt:k) [ 0; 1; 2; 3; 4 ];
  check
    (list (float 1e-9))
    "capped exponential schedule"
    [ 0.1; 0.2; 0.4; 0.5; 0.5 ]
    (List.rev !slept)

let test_backoff_jitter_deterministic_and_bounded () =
  let delays seed =
    let b = Metrics.Backoff.make ~base_s:0.1 ~factor:2.0 ~max_s:2.0
        ~jitter:0.5 ~seed ~sleep:(fun _ -> ()) ()
    in
    List.map (fun k -> Metrics.Backoff.delay b ~attempt:k) [ 0; 1; 2; 3 ]
  in
  check (list (float 1e-9)) "same seed, same delays" (delays 7) (delays 7);
  check bool "different seed decorrelates" true (delays 7 <> delays 8);
  List.iteri
    (fun k d ->
      let full = 0.1 *. (2.0 ** float_of_int k) in
      check bool
        (Printf.sprintf "attempt %d jittered into [d/2, d]" k)
        true
        (d >= (full /. 2.) -. 1e-9 && d <= full +. 1e-9))
    (delays 7)

let test_backoff_none_never_sleeps () =
  let b = Metrics.Backoff.none () in
  List.iter
    (fun k ->
      check (float 0.) "delay is zero" 0. (Metrics.Backoff.delay b ~attempt:k);
      (* pause skips a zero sleep entirely, so nothing can block *)
      Metrics.Backoff.pause b ~attempt:k)
    [ 0; 1; 5 ]

(* The suite runner's retry path threads the backoff through: a loop
   that keeps crashing is re-attempted [retries] times, each attempt
   spaced by the exact schedule, then quarantined with the retry mark. *)
let test_suite_retry_threads_backoff () =
  let loops = Lazy.force tomcatv_loops in
  let victim = (List.nth loops 0).Workload.Generator.id in
  let slept = ref [] in
  let backoff =
    Metrics.Backoff.make ~base_s:0.05 ~factor:2.0 ~jitter:0.0
      ~sleep:(fun d -> slept := d :: !slept)
      ()
  in
  let iso =
    Metrics.Experiment.run_suite_isolated ~retry:true ~retries:3 ~backoff
      ~poison:[ victim ] Metrics.Experiment.Baseline config4c loops
  in
  (match iso.Metrics.Experiment.iso_quarantined with
  | [ q ] ->
      check string "victim still quarantined" victim
        q.Metrics.Experiment.q_loop.Workload.Generator.id;
      check bool "marked retried" true q.Metrics.Experiment.q_retried
  | qs -> failf "expected one quarantined loop, got %d" (List.length qs));
  check
    (list (float 1e-9))
    "three attempts paced by the backoff schedule"
    [ 0.05; 0.1; 0.2 ]
    (List.rev !slept)

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                          *)
(* ------------------------------------------------------------------ *)

let sample_checkpoint () =
  Metrics.Checkpoint.create ~config:"4c1b2l64r"
    [
      {
        Metrics.Checkpoint.e_mode = "base";
        e_loop = "tomcatv.0";
        e_status =
          Metrics.Checkpoint.Done
            {
              Metrics.Checkpoint.s_id = "tomcatv.0";
              s_benchmark = "tomcatv";
              s_visits = 7;
              s_trip = 30;
              s_ii = 4;
              s_mii = 4;
              s_n_comms = 2;
              s_cycles = 131;
              s_useful = 420;
            };
      };
      {
        Metrics.Checkpoint.e_mode = "base";
        e_loop = "swim.3";
        e_status = Metrics.Checkpoint.Skipped "escalation-cap";
      };
      {
        Metrics.Checkpoint.e_mode = "repl";
        e_loop = "apsi.2";
        e_status =
          Metrics.Checkpoint.Quarantined
            ( "internal",
              "tricky \"quoted\" text, back\\slash, tab\t, newline\n, \
               control \001 done" );
      };
    ]

let test_checkpoint_roundtrip () =
  let cp = sample_checkpoint () in
  match Metrics.Checkpoint.of_string (Metrics.Checkpoint.to_string cp) with
  | Error msg -> failf "roundtrip failed: %s" msg
  | Ok cp' ->
      check bool "roundtrip preserves everything" true (cp = cp')

let test_checkpoint_save_load () =
  let cp = sample_checkpoint () in
  let path = Filename.temp_file "checkpoint" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Metrics.Checkpoint.save cp ~path;
      match Metrics.Checkpoint.load ~path with
      | Ok cp' -> check bool "disk roundtrip" true (cp = cp')
      | Error msg -> failf "load failed: %s" msg)

let test_checkpoint_rejects_garbage () =
  List.iter
    (fun text ->
      match Metrics.Checkpoint.of_string text with
      | Error _ -> ()
      | Ok _ -> failf "accepted %S" text)
    [ ""; "{"; "[]"; "{\"version\":99,\"config\":\"x\",\"entries\":[]}";
      "{\"version\":1}"; "{\"version\":1,\"config\":\"x\",\"entries\":[]} x" ]

(* ------------------------------------------------------------------ *)
(* Resume                                                               *)
(* ------------------------------------------------------------------ *)

let modes = [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ]

let table_of outcome =
  Metrics.Robust.ipc_table config4c
    ~base:(Metrics.Robust.summaries outcome ~mode:"base")
    ~repl:(Metrics.Robust.summaries outcome ~mode:"repl")

let test_resume_completes_without_recompute () =
  let loops = Lazy.force tomcatv_loops in
  let victim = (List.nth loops 2).Workload.Generator.id in
  let poisoned =
    Metrics.Robust.run ~poison:[ victim ] ~modes config4c loops
  in
  (* the manifest of the poisoned run names the victim in both modes *)
  List.iter
    (fun mode ->
      match
        Metrics.Checkpoint.find poisoned.Metrics.Robust.o_checkpoint ~mode
          ~loop:victim
      with
      | Some (Metrics.Checkpoint.Quarantined ("internal", msg)) ->
          check bool
            (mode ^ " quarantine names the victim")
            true
            (Metrics.Experiment.contains msg ~sub:victim)
      | _ -> failf "%s: victim not quarantined in manifest" mode)
    [ "base"; "repl" ];
  check int "poisoned run computed everything" (2 * List.length loops)
    poisoned.Metrics.Robust.o_computed;
  (* resume (victim healthy again): only the quarantined entries are
     recomputed, and the tables come out byte-identical to a fresh
     healthy run *)
  let resumed =
    Metrics.Robust.run ~resume:poisoned.Metrics.Robust.o_checkpoint ~modes
      config4c loops
  in
  check int "resume recomputed only the victim" 2
    resumed.Metrics.Robust.o_computed;
  check int "resume reused the rest"
    (2 * (List.length loops - 1))
    resumed.Metrics.Robust.o_reused;
  check int "resume quarantined nothing" 0
    (List.length resumed.Metrics.Robust.o_quarantined);
  let fresh = Metrics.Robust.run ~modes config4c loops in
  check string "byte-identical tables" (table_of fresh) (table_of resumed)

let suite =
  [
    test_case "pool fault metadata" `Quick test_pool_fault_metadata;
    test_case "pool map_result" `Quick test_pool_map_result;
    test_case "budget: attempt ceiling" `Quick test_budget_attempts;
    test_case "budget: injected clock" `Quick test_budget_fake_clock;
    test_case "budget: generous budget is invisible" `Quick
      test_budget_generous_is_ok;
    test_case "internal classification from raising transform" `Quick
      test_internal_from_raising_transform;
    test_case "exit codes and classes are stable" `Quick
      test_exit_codes_stable;
    test_case "poisoned loop is quarantined" `Quick
      test_quarantine_poisoned_loop;
    test_case "retry marks surviving quarantine" `Quick
      test_quarantine_retry_marks;
    test_case "backoff: exact capped-exponential schedule" `Quick
      test_backoff_exact_schedule;
    test_case "backoff: jitter is seeded and bounded" `Quick
      test_backoff_jitter_deterministic_and_bounded;
    test_case "backoff: none never sleeps" `Quick
      test_backoff_none_never_sleeps;
    test_case "suite retry threads the backoff" `Quick
      test_suite_retry_threads_backoff;
    test_case "checkpoint string roundtrip" `Quick test_checkpoint_roundtrip;
    test_case "checkpoint disk roundtrip" `Quick test_checkpoint_save_load;
    test_case "checkpoint rejects garbage" `Quick
      test_checkpoint_rejects_garbage;
    test_case "resume: no recompute, identical tables" `Quick
      test_resume_completes_without_recompute;
  ]
