(* Property tests for the CDCL core (Sched.Sat), cross-checked against
   a deliberately naive DPLL reference implemented right here — the two
   share nothing but the CNF.  Random 3-CNF instances are small enough
   (≤ 12 variables) that the reference's exponential worst case never
   bites. *)

(* ---- naive DPLL reference -------------------------------------- *)

exception Conflict

(* assignment: asg.(v) = 0 undef / 1 true / -1 false, 1-based vars *)
let lit_val asg l =
  let a = asg.(abs l) in
  if a = 0 then 0 else if (l > 0) = (a > 0) then 1 else -1

(* Unit-propagation to fixpoint over plain clause lists; raises
   [Conflict] on an all-false clause.  Mutates [asg]. *)
let unit_prop asg clauses =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        if not (List.exists (fun l -> lit_val asg l = 1) c) then
          match List.filter (fun l -> lit_val asg l = 0) c with
          | [] -> raise Conflict
          | [ l ] ->
              asg.(abs l) <- (if l > 0 then 1 else -1);
              changed := true
          | _ -> ())
      clauses
  done

let rec dpll nv clauses asg =
  match unit_prop asg clauses with
  | exception Conflict -> None
  | () ->
      let v = ref 0 in
      for i = nv downto 1 do
        if asg.(i) = 0 then v := i
      done;
      if !v = 0 then Some (Array.copy asg)
      else
        let branch b =
          let a = Array.copy asg in
          a.(!v) <- b;
          dpll nv clauses a
        in
        (match branch 1 with Some m -> Some m | None -> branch (-1))

let naive_solve nv clauses = dpll nv clauses (Array.make (nv + 1) 0)

let satisfies asg clauses =
  List.for_all (fun c -> List.exists (fun l -> lit_val asg l = 1) c) clauses

(* ---- CDCL under test ------------------------------------------- *)

let cdcl_solve ?assumptions nv clauses =
  let s = Sched.Sat.create () in
  for _ = 1 to nv do
    ignore (Sched.Sat.new_var s)
  done;
  List.iter (Sched.Sat.add_clause s) clauses;
  let r = Sched.Sat.solve ?assumptions s in
  (s, r)

let model_of s nv =
  Array.init (nv + 1) (fun v ->
      if v = 0 then 0 else if Sched.Sat.value s v then 1 else -1)

(* ---- random 3-CNF ---------------------------------------------- *)

let cnf_gen =
  QCheck.Gen.(
    let* nv = 3 -- 12 in
    let* nc = 1 -- 50 in
    let lit = map2 (fun v sign -> if sign then v else -v) (1 -- nv) bool in
    let clause = list_size (1 -- 3) lit in
    let+ cs = list_size (return nc) clause in
    (nv, cs))

let cnf_print (nv, cs) =
  Printf.sprintf "nv=%d cnf=%s" nv
    (String.concat " & "
       (List.map
          (fun c ->
            "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
          cs))

let cnf_arb = QCheck.make ~print:cnf_print cnf_gen

(* ---- properties ------------------------------------------------- *)

let prop_agreement =
  QCheck.Test.make ~name:"CDCL agrees with naive DPLL on sat/unsat"
    ~count:500 cnf_arb (fun (nv, cs) ->
      let _, r = cdcl_solve nv cs in
      let reference = naive_solve nv cs in
      match (r, reference) with
      | Sched.Sat.Sat, Some _ | Sched.Sat.Unsat, None -> true
      | Sched.Sat.Unknown, _ ->
          QCheck.Test.fail_reportf "solver returned Unknown unbudgeted"
      | Sched.Sat.Sat, None ->
          QCheck.Test.fail_reportf "CDCL says Sat, reference says Unsat"
      | Sched.Sat.Unsat, Some _ ->
          QCheck.Test.fail_reportf "CDCL says Unsat, reference says Sat")

let prop_model_satisfies =
  QCheck.Test.make ~name:"CDCL models satisfy every clause" ~count:500
    cnf_arb (fun (nv, cs) ->
      let s, r = cdcl_solve nv cs in
      match r with
      | Sched.Sat.Sat ->
          let m = model_of s nv in
          satisfies m cs
          || QCheck.Test.fail_reportf "model does not satisfy the CNF"
      | _ -> QCheck.assume_fail ())

(* Literals forced by unit propagation alone are logical consequences:
   any model the solver returns must contain them, and a UP-level
   conflict must mean Unsat. *)
let prop_unit_fixpoint =
  QCheck.Test.make ~name:"models extend the unit-propagation fixpoint"
    ~count:500 cnf_arb (fun (nv, cs) ->
      let asg = Array.make (nv + 1) 0 in
      match unit_prop asg cs with
      | exception Conflict ->
          let _, r = cdcl_solve nv cs in
          r = Sched.Sat.Unsat
          || QCheck.Test.fail_reportf "UP-refutable CNF not Unsat"
      | () -> (
          let s, r = cdcl_solve nv cs in
          match r with
          | Sched.Sat.Sat ->
              let m = model_of s nv in
              (try
                 for v = 1 to nv do
                   if asg.(v) <> 0 && asg.(v) <> m.(v) then raise Exit
                 done;
                 true
               with Exit ->
                 QCheck.Test.fail_reportf
                   "model contradicts a unit-propagated literal")
          | _ -> true))

(* Every learned clause must be implied by the original CNF: appending
   its negation (as unit clauses) must leave the CNF unsatisfiable. *)
let prop_learned_redundant =
  QCheck.Test.make ~name:"learned clauses are implied by the CNF"
    ~count:200 cnf_arb (fun (nv, cs) ->
      let s, _ = cdcl_solve nv cs in
      let learned = Sched.Sat.learned_clauses s in
      List.for_all
        (fun c ->
          let negated = List.map (fun l -> [ -l ]) c in
          match naive_solve nv (cs @ negated) with
          | None -> true
          | Some _ ->
              QCheck.Test.fail_reportf "learned clause %s is not implied"
                (String.concat "|" (List.map string_of_int c)))
        learned)

(* Assumptions: the same solver instance must answer Sat or Unsat per
   call without poisoning its clause set — the incremental pattern
   Exact relies on for II levels. *)
let test_assumptions () =
  let s = Sched.Sat.create () in
  let x = Sched.Sat.new_var s in
  let y = Sched.Sat.new_var s in
  Sched.Sat.add_clause s [ x; y ];
  Sched.Sat.add_clause s [ -x; y ];
  Alcotest.(check bool) "assume ~y -> unsat" true
    (Sched.Sat.solve ~assumptions:[ -y ] s = Sched.Sat.Unsat);
  Alcotest.(check bool) "still ok" true (Sched.Sat.ok s);
  Alcotest.(check bool) "assume y -> sat" true
    (Sched.Sat.solve ~assumptions:[ y ] s = Sched.Sat.Sat);
  Alcotest.(check bool) "y true in model" true (Sched.Sat.value s y);
  Alcotest.(check bool) "unconstrained -> sat" true
    (Sched.Sat.solve s = Sched.Sat.Sat);
  (* the guard-literal pattern: clause group retractable by selector *)
  let g = Sched.Sat.new_var s in
  Sched.Sat.add_clause s [ -g; -y ];
  Alcotest.(check bool) "guard on -> unsat" true
    (Sched.Sat.solve ~assumptions:[ g ] s = Sched.Sat.Unsat);
  Alcotest.(check bool) "guard off -> sat" true
    (Sched.Sat.solve ~assumptions:[ -g ] s = Sched.Sat.Sat)

(* Pigeonhole PHP(6,5): 6 pigeons, 5 holes — classic UNSAT regression
   that exercises learning and restarts well beyond unit propagation. *)
let test_pigeonhole () =
  let pigeons = 6 and holes = 5 in
  let s = Sched.Sat.create () in
  let var = Array.make_matrix pigeons holes 0 in
  for p = 0 to pigeons - 1 do
    for h = 0 to holes - 1 do
      var.(p).(h) <- Sched.Sat.new_var s
    done
  done;
  for p = 0 to pigeons - 1 do
    Sched.Sat.add_clause s
      (List.init holes (fun h -> var.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sched.Sat.add_clause s [ -var.(p1).(h); -var.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "PHP(6,5) unsat" true
    (Sched.Sat.solve s = Sched.Sat.Unsat);
  Alcotest.(check bool) "conflicts were needed" true
    (Sched.Sat.n_conflicts s > 0)

let test_trivia () =
  let s = Sched.Sat.create () in
  Alcotest.(check bool) "empty CNF sat" true
    (Sched.Sat.solve s = Sched.Sat.Sat);
  let x = Sched.Sat.new_var s in
  Sched.Sat.add_clause s [ x ];
  Sched.Sat.add_clause s [ -x ];
  Alcotest.(check bool) "x & -x kills the solver" false (Sched.Sat.ok s);
  Alcotest.(check bool) "and stays unsat" true
    (Sched.Sat.solve s = Sched.Sat.Unsat)

let test_budget () =
  (* a hard instance under a one-conflict budget must answer Unknown *)
  let pigeons = 8 and holes = 7 in
  let s = Sched.Sat.create () in
  let var = Array.make_matrix pigeons holes 0 in
  for p = 0 to pigeons - 1 do
    for h = 0 to holes - 1 do
      var.(p).(h) <- Sched.Sat.new_var s
    done
  done;
  for p = 0 to pigeons - 1 do
    Sched.Sat.add_clause s (List.init holes (fun h -> var.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sched.Sat.add_clause s [ -var.(p1).(h); -var.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "budget exhaustion is Unknown" true
    (Sched.Sat.solve ~max_conflicts:1 s = Sched.Sat.Unknown)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_agreement;
    QCheck_alcotest.to_alcotest prop_model_satisfies;
    QCheck_alcotest.to_alcotest prop_unit_fixpoint;
    QCheck_alcotest.to_alcotest prop_learned_redundant;
    Alcotest.test_case "assumptions and guard literals" `Quick
      test_assumptions;
    Alcotest.test_case "pigeonhole PHP(6,5) unsat" `Quick test_pigeonhole;
    Alcotest.test_case "trivial cases" `Quick test_trivia;
    Alcotest.test_case "conflict budget yields Unknown" `Quick test_budget;
  ]
