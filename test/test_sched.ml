(* Scheduler substrate: matching, partitioning, communications, routing,
   MRT, ordering, placement, register pressure, driver. *)

open Ddg

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let config4c = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64
let config2c = Machine.Config.make ~clusters:2 ~buses:1 ~bus_latency:2 ~registers:64
let unified = Machine.Config.unified ~registers:64

(* ---------------- matching ---------------- *)

let test_matching_greedy () =
  let edges =
    [
      { Sched.Matching.u = 0; v = 1; weight = 10 };
      { Sched.Matching.u = 1; v = 2; weight = 5 };
      { Sched.Matching.u = 2; v = 3; weight = 10 };
      { Sched.Matching.u = 0; v = 3; weight = 1 };
    ]
  in
  let pairs = Sched.Matching.greedy ~n:4 edges in
  check (Alcotest.list (Alcotest.pair int int)) "heavy edges matched"
    [ (0, 1); (2, 3) ] (List.sort compare pairs);
  let partner = Sched.Matching.matched_array ~n:4 pairs in
  check int "partner of 0" 1 partner.(0);
  check int "partner of 3" 2 partner.(3)

let test_matching_ignores_bad_edges () =
  let edges =
    [
      { Sched.Matching.u = 0; v = 0; weight = 99 };
      { Sched.Matching.u = 1; v = 2; weight = 0 };
      { Sched.Matching.u = 1; v = 2; weight = -5 };
    ]
  in
  check int "nothing matched" 0
    (List.length (Sched.Matching.greedy ~n:3 edges))

let test_matching_deterministic () =
  let edges =
    [
      { Sched.Matching.u = 0; v = 1; weight = 5 };
      { Sched.Matching.u = 2; v = 3; weight = 5 };
      { Sched.Matching.u = 1; v = 2; weight = 5 };
    ]
  in
  let a = Sched.Matching.greedy ~n:4 edges in
  let b = Sched.Matching.greedy ~n:4 (List.rev edges) in
  check bool "order independent" true (List.sort compare a = List.sort compare b)

(* ---------------- communications ---------------- *)

let test_comm_fig3 () =
  let g = Examples.figure3 () in
  let assign = Examples.figure3_partition g in
  check int "three comms" 3 (Sched.Comm.count g ~assign);
  let d = Graph.find_label g "D" and e = Graph.find_label g "E" in
  check (Alcotest.list int) "D needed in cluster 4" [ 3 ]
    (Sched.Comm.consumer_clusters g ~assign d);
  check (Alcotest.list int) "E needed in clusters 2,4" [ 1; 3 ]
    (Sched.Comm.consumer_clusters g ~assign e)

let test_comm_extra () =
  let g = Examples.figure3 () in
  let assign = Examples.figure3_partition g in
  let custom =
    Machine.Config.custom ~clusters:4 ~buses:1 ~bus_latency:1 ~registers:64
      ~fus_per_cluster:(4, 0, 0)
  in
  (* paper's example: II=2, one 1-cycle bus -> bus_coms=2, extra=1 *)
  check int "extra at II=2" 1 (Sched.Comm.extra custom g ~assign ~ii:2);
  check int "extra at II=3" 0 (Sched.Comm.extra custom g ~assign ~ii:3)

let test_min_ii_for_bus () =
  check int "zero comms" 1 (Sched.Comm.min_ii_for_bus config4c ~n_comms:0);
  (* 1 bus, 2-cycle latency: 3 comms need II >= 6 *)
  check int "3 comms" 6 (Sched.Comm.min_ii_for_bus config4c ~n_comms:3);
  check int "unified" 1 (Sched.Comm.min_ii_for_bus unified ~n_comms:42)

let test_mem_edges_never_communicate () =
  let b = Graph.Builder.create () in
  let st = Graph.Builder.add b Machine.Opclass.Store in
  let ld = Graph.Builder.add b Machine.Opclass.Load in
  let iv = Graph.Builder.add b Machine.Opclass.Int_arith in
  Graph.Builder.depend b ~src:iv ~dst:ld;
  Graph.Builder.depend b ~src:iv ~dst:st;
  Graph.Builder.mem_depend b ~src:st ~dst:ld;
  let g = Graph.Builder.build b in
  (* store and load in different clusters: the mem edge costs nothing,
     only iv's value (used in both) communicates. *)
  let assign = [| 0; 1; 0 |] in
  check (Alcotest.list int) "only iv" [ iv ]
    (Sched.Comm.producers g ~assign)

(* ---------------- partition ---------------- *)

let test_partition_valid_and_capacity () =
  let g = Examples.figure3 () in
  List.iter
    (fun config ->
      let ii = Ddg.Mii.mii config g in
      let assign = Sched.Partition.initial config g ~ii in
      check bool "valid" true (Sched.Partition.is_valid config assign))
    [ config4c; config2c; unified ]

let test_partition_unified_all_zero () =
  let g = Examples.figure3 () in
  let assign = Sched.Partition.initial unified g ~ii:2 in
  check bool "all zero" true (Array.for_all (fun c -> c = 0) assign)

let test_refine_does_not_mutate () =
  let g = Examples.figure3 () in
  let assign = Sched.Partition.initial config4c g ~ii:3 in
  let copy = Array.copy assign in
  ignore (Sched.Partition.refine config4c g ~ii:4 assign);
  check bool "input untouched" true (assign = copy)

let test_refine_improves_or_keeps () =
  let g = Examples.figure3 () in
  let rec_ii = Mii.rec_mii g in
  let before = Array.make (Graph.n_nodes g) 0 in
  (* everything in cluster 0 is capacity-infeasible at ii=2; refinement
     must spread it. *)
  let after = Sched.Partition.refine config4c g ~ii:4 before in
  let est_b = Sched.Pseudo.estimate ~rec_ii config4c g ~assign:before ~ii:4 in
  let est_a = Sched.Pseudo.estimate ~rec_ii config4c g ~assign:after ~ii:4 in
  check bool "not worse" true (Sched.Pseudo.compare est_a est_b <= 0)

(* ---------------- routing ---------------- *)

let test_route_fig3 () =
  let g = Examples.figure3 () in
  let assign = Examples.figure3_partition g in
  let route = Sched.Route.build config4c g ~assign in
  check int "three copies" 3 (Sched.Route.n_copies route);
  check int "originals preserved" (Graph.n_nodes g) route.Sched.Route.n_original;
  (* copies sit in the producer's cluster *)
  let d = Graph.find_label g "D" in
  let cp_d = Graph.find_label route.Sched.Route.graph "cp_D" in
  check bool "copy is copy" true (Sched.Route.is_copy route cp_d);
  check int "copy cluster = producer cluster" assign.(d)
    route.Sched.Route.assign.(cp_d);
  check int "copy_of" d route.Sched.Route.copy_of.(cp_d);
  (* after routing, every register edge is intra-cluster except
     copy->consumer *)
  List.iter
    (fun e ->
      if e.Graph.kind = Graph.Reg then
        let cu = route.Sched.Route.assign.(e.Graph.src) in
        let cv = route.Sched.Route.assign.(e.Graph.dst) in
        if cu <> cv then
          check bool "cross edge from copy" true
            (Sched.Route.is_copy route e.Graph.src))
    (Graph.edges route.Sched.Route.graph)

let test_route_copy_edge_latencies () =
  let g = Examples.figure3 () in
  let assign = Examples.figure3_partition g in
  let route = Sched.Route.build config4c g ~assign in
  let rg = route.Sched.Route.graph in
  let cp_e = Graph.find_label rg "cp_E" in
  List.iter
    (fun e -> check int "bus latency" 2 e.Graph.latency)
    (Graph.reg_succs rg cp_e);
  let route0 = Sched.Route.build ~latency0:true config4c g ~assign in
  let rg0 = route0.Sched.Route.graph in
  let cp_e0 = Graph.find_label rg0 "cp_E" in
  List.iter
    (fun e -> check int "latency0" 0 e.Graph.latency)
    (Graph.reg_succs rg0 cp_e0)

(* ---------------- MRT ---------------- *)

let test_mrt_fu () =
  let mrt = Sched.Mrt.create config4c ~ii:3 in
  check bool "free" true
    (Sched.Mrt.fu_available mrt ~cluster:0 ~kind:Machine.Fu.Int ~cycle:5);
  Sched.Mrt.reserve_fu mrt ~cluster:0 ~kind:Machine.Fu.Int ~cycle:5;
  (* 4c has one int unit: slot 5 mod 3 = 2 is now full at any congruent
     cycle *)
  check bool "congruent cycle busy" false
    (Sched.Mrt.fu_available mrt ~cluster:0 ~kind:Machine.Fu.Int ~cycle:2);
  check bool "other slot free" true
    (Sched.Mrt.fu_available mrt ~cluster:0 ~kind:Machine.Fu.Int ~cycle:3);
  check bool "other cluster free" true
    (Sched.Mrt.fu_available mrt ~cluster:1 ~kind:Machine.Fu.Int ~cycle:2);
  check bool "double reserve raises" true
    (try
       Sched.Mrt.reserve_fu mrt ~cluster:0 ~kind:Machine.Fu.Int ~cycle:8;
       false
     with Invalid_argument _ -> true)

let test_mrt_negative_cycles () =
  let mrt = Sched.Mrt.create config4c ~ii:4 in
  Sched.Mrt.reserve_fu mrt ~cluster:0 ~kind:Machine.Fu.Fp ~cycle:(-9);
  (* -9 mod 4 = 3 *)
  check bool "floor mod" false
    (Sched.Mrt.fu_available mrt ~cluster:0 ~kind:Machine.Fu.Fp ~cycle:3)

let test_mrt_bus () =
  (* bus latency 2: a transfer holds a bus for 2 consecutive slots *)
  let mrt = Sched.Mrt.create config4c ~ii:4 in
  (match Sched.Mrt.find_bus mrt ~cycle:0 with
  | Some b -> Sched.Mrt.reserve_bus mrt ~bus:b ~cycle:0
  | None -> Alcotest.fail "bus expected");
  check bool "overlapping start busy" true (Sched.Mrt.find_bus mrt ~cycle:1 = None);
  check bool "slot 3 would wrap into 0" true
    (Sched.Mrt.find_bus mrt ~cycle:3 = None);
  check bool "slot 2 free" true (Sched.Mrt.find_bus mrt ~cycle:2 <> None)

let test_mrt_bus_too_long () =
  (* a transfer longer than the II can never fit *)
  let mrt = Sched.Mrt.create config4c ~ii:1 in
  check bool "no slot" true (Sched.Mrt.find_bus mrt ~cycle:0 = None)

(* ---------------- ordering ---------------- *)

let test_ordering_permutation () =
  let g = Examples.figure3 () in
  let order = Sched.Ordering.order g ~ii:2 in
  check int "covers all" (Graph.n_nodes g) (List.length order);
  check int "distinct" (Graph.n_nodes g)
    (List.length (List.sort_uniq compare order))

let test_ordering_recurrence_first () =
  let g = Examples.with_recurrence () in
  let order = Sched.Ordering.order g ~ii:4 in
  let pos v = Option.get (List.find_index (fun x -> x = v) order) in
  let acc = Graph.find_label g "acc" in
  let st = Graph.find_label g "st" in
  check bool "recurrence before its sink" true (pos acc < pos st)

(* ---------------- placement + driver ---------------- *)

let schedule_ok config g =
  match Sched.Driver.schedule_loop config g with
  | Ok o -> o
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)

let test_schedule_chain_unified () =
  let g = Examples.tiny_chain ~n:4 () in
  let o = schedule_ok unified g in
  check int "ii=mii" o.Sched.Driver.mii o.Sched.Driver.ii;
  check int "no comms" 0 o.Sched.Driver.n_comms;
  Sim.Checker.check_exn o.Sched.Driver.schedule

let test_schedule_respects_recurrence () =
  let g = Examples.with_recurrence () in
  let o = schedule_ok config4c g in
  check bool "ii >= rec mii" true (o.Sched.Driver.ii >= Mii.rec_mii g);
  Sim.Checker.check_exn o.Sched.Driver.schedule

let test_driver_attribution_sums () =
  let g = Examples.figure3 () in
  let o = schedule_ok config4c g in
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 o.Sched.Driver.increments
  in
  check int "increments sum to ii - mii" (o.Sched.Driver.ii - o.Sched.Driver.mii)
    total

let test_driver_unified_beats_clustered () =
  let g = Examples.figure3 () in
  let u = schedule_ok unified g in
  let c = schedule_ok config4c g in
  check bool "unified ii <= clustered ii" true
    (u.Sched.Driver.ii <= c.Sched.Driver.ii)

let test_schedule_length_and_sc () =
  let g = Examples.tiny_chain ~n:5 () in
  let o = schedule_ok unified g in
  let s = o.Sched.Driver.schedule in
  check int "length 5 (chain of 1-cycle ops)" 5 (Sched.Schedule.length s);
  check int "sc" ((5 + s.Sched.Schedule.ii - 1) / s.Sched.Schedule.ii)
    (Sched.Schedule.stage_count s);
  check int "texec" ((10 - 1 + Sched.Schedule.stage_count s) * s.Sched.Schedule.ii)
    (Sched.Schedule.execution_cycles s ~iterations:10)

let test_heterogeneous_end_to_end () =
  (* an address cluster (int+mem heavy) next to two fp clusters: the
     paper's "easily extended to heterogeneous clusters" claim, driven
     through partition -> replication -> placement -> checker *)
  let config =
    Machine.Config.heterogeneous ~buses:1 ~bus_latency:2 ~registers:60
      ~clusters:[ (2, 0, 2); (1, 2, 1); (1, 2, 1) ]
  in
  List.iter
    (fun g ->
      let tr, _ = Replication.Replicate.transform () in
      match Sched.Driver.schedule_loop ~transform:tr config g with
      | Ok o -> Sim.Checker.check_exn o.Sched.Driver.schedule
      | Error e -> Alcotest.failf "heterogeneous: %s" (Sched.Sched_error.to_string e))
    [
      Examples.figure3 ();
      Examples.with_recurrence ();
      (List.nth
         (Workload.Generator.generate (Workload.Benchmark.find "wave5"))
         0)
        .Workload.Generator.graph;
    ]

(* ---------------- register pressure ---------------- *)

let test_regpressure_chain () =
  let g = Examples.tiny_chain ~n:3 () in
  let o = schedule_ok unified g in
  let p = Sched.Regpressure.max_pressure o.Sched.Driver.schedule in
  (* a chain keeps only a handful of values alive (at II=1 each value
     overlaps its own next-iteration instances) *)
  check bool "small pressure" true (p >= 1 && p <= 6)

let test_regpressure_long_lifetime () =
  (* one producer with a distance-2 consumer: its value spans >= 2 IIs *)
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add b Machine.Opclass.Int_arith in
  let y = Graph.Builder.add b Machine.Opclass.Int_arith in
  Graph.Builder.depend b ~distance:2 ~src:x ~dst:y;
  Graph.Builder.depend b ~distance:1 ~src:x ~dst:x;
  let g = Graph.Builder.build b in
  let o = schedule_ok unified g in
  check bool "overlapping instances need >= 2 regs" true
    (Sched.Regpressure.max_pressure o.Sched.Driver.schedule >= 2)

let suite =
  [
    Alcotest.test_case "matching greedy" `Quick test_matching_greedy;
    Alcotest.test_case "matching ignores bad edges" `Quick
      test_matching_ignores_bad_edges;
    Alcotest.test_case "matching deterministic" `Quick
      test_matching_deterministic;
    Alcotest.test_case "comm fig3" `Quick test_comm_fig3;
    Alcotest.test_case "comm extra" `Quick test_comm_extra;
    Alcotest.test_case "min ii for bus" `Quick test_min_ii_for_bus;
    Alcotest.test_case "mem edges never communicate" `Quick
      test_mem_edges_never_communicate;
    Alcotest.test_case "partition valid" `Quick
      test_partition_valid_and_capacity;
    Alcotest.test_case "partition unified" `Quick
      test_partition_unified_all_zero;
    Alcotest.test_case "refine does not mutate" `Quick
      test_refine_does_not_mutate;
    Alcotest.test_case "refine improves or keeps" `Quick
      test_refine_improves_or_keeps;
    Alcotest.test_case "route fig3" `Quick test_route_fig3;
    Alcotest.test_case "route copy latencies" `Quick
      test_route_copy_edge_latencies;
    Alcotest.test_case "mrt fu" `Quick test_mrt_fu;
    Alcotest.test_case "mrt negative cycles" `Quick test_mrt_negative_cycles;
    Alcotest.test_case "mrt bus" `Quick test_mrt_bus;
    Alcotest.test_case "mrt bus too long" `Quick test_mrt_bus_too_long;
    Alcotest.test_case "ordering permutation" `Quick
      test_ordering_permutation;
    Alcotest.test_case "ordering recurrence first" `Quick
      test_ordering_recurrence_first;
    Alcotest.test_case "schedule chain unified" `Quick
      test_schedule_chain_unified;
    Alcotest.test_case "schedule respects recurrence" `Quick
      test_schedule_respects_recurrence;
    Alcotest.test_case "driver attribution sums" `Quick
      test_driver_attribution_sums;
    Alcotest.test_case "unified beats clustered" `Quick
      test_driver_unified_beats_clustered;
    Alcotest.test_case "schedule length and sc" `Quick
      test_schedule_length_and_sc;
    Alcotest.test_case "heterogeneous end to end" `Quick
      test_heterogeneous_end_to_end;
    Alcotest.test_case "regpressure chain" `Quick test_regpressure_chain;
    Alcotest.test_case "regpressure long lifetime" `Quick
      test_regpressure_long_lifetime;
  ]
