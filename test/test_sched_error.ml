(* Table-driven contract for the failure taxonomy: stable class names,
   exit codes, the bug/give-up partition, and the one-line rendering —
   the CLI surface scripts and CI match on.  Sched_error.examples holds
   one value per class; a class added without a row here fails the
   arity check instead of slipping through. *)

open Alcotest
open Sched.Sched_error

let failf fmt = Alcotest.failf fmt

(* class name, exit code, is_bug, is_give_up — one row per class *)
let table =
  [
    ("infeasible-partition", 10, false, true);
    ("escalation-cap", 11, false, true);
    ("register-pressure", 12, false, true);
    ("bus-saturation", 13, false, true);
    ("checker-violation", 20, true, false);
    ("timeout", 14, false, false);
    ("internal", 21, true, false);
    ("server", 22, false, false);
  ]

let row_of e =
  match List.assoc_opt (class_name e) (List.map (fun (n, c, b, g) -> (n, (c, b, g))) table) with
  | Some r -> r
  | None -> failf "class %s has no table row" (class_name e)

let test_examples_cover_every_class () =
  check int "one example per table row" (List.length table)
    (List.length examples);
  let names = List.map class_name examples in
  check int "no class repeated" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun (name, _, _, _) ->
      if not (List.mem name names) then failf "no example for class %s" name)
    table

let test_exit_codes_stable () =
  List.iter
    (fun e ->
      let code, _, _ = row_of e in
      check int (class_name e ^ " exit code") code (exit_code e))
    examples;
  (* codes are process exit codes: distinct, nonzero, below 126 *)
  let codes = List.map exit_code examples in
  check int "codes distinct" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c -> check bool "code in CLI range" true (c > 0 && c < 126))
    codes

let test_bug_give_up_partition () =
  List.iter
    (fun e ->
      let _, bug, give_up = row_of e in
      check bool (class_name e ^ " is_bug") bug (is_bug e);
      check bool (class_name e ^ " is_give_up") give_up (is_give_up e);
      (* never both: a bug is not skippable data *)
      check bool
        (class_name e ^ " not both bug and give-up")
        false
        (is_bug e && is_give_up e))
    examples;
  (* timeout (retryable, not discardable) and server (operational, no
     loop was judged) are the classes that are neither *)
  let neither =
    List.filter (fun e -> (not (is_bug e)) && not (is_give_up e)) examples
  in
  check (list string) "only timeout and server are neither"
    [ "timeout"; "server" ]
    (List.map class_name neither)

let test_one_line_rendering () =
  List.iter
    (fun e ->
      let s = to_string e in
      check bool (class_name e ^ " rendering nonempty") true (String.length s > 0);
      String.iter
        (fun c ->
          if c = '\n' || c = '\r' then
            failf "%s: to_string contains a newline: %S" (class_name e) s)
        s)
    examples;
  (* embedded newlines in carried messages are flattened, not emitted *)
  List.iter
    (fun e ->
      let s = to_string e in
      check bool "flattened payload" false (String.contains s '\n'))
    [ Internal "a\nb\r\nc"; Checker_violation [ "x\ny"; "z" ] ]

let test_stderr_format () =
  (* the repro CLI prints: "repro: error class=<tag> <message>" — pin
     the pieces the format is assembled from *)
  List.iter
    (fun e ->
      let line =
        Printf.sprintf "repro: error class=%s %s" (class_name e) (to_string e)
      in
      check bool "single line" false (String.contains line '\n');
      check bool "class tag is kebab-case" true
        (String.for_all
           (fun c -> (c >= 'a' && c <= 'z') || c = '-')
           (class_name e)))
    examples

let suite =
  [
    test_case "examples cover every class" `Quick test_examples_cover_every_class;
    test_case "exit codes are stable and distinct" `Quick test_exit_codes_stable;
    test_case "bug/give-up partition" `Quick test_bug_give_up_partition;
    test_case "one-line rendering" `Quick test_one_line_rendering;
    test_case "stderr line format" `Quick test_stderr_format;
  ]
