(* The serve engine ({!Metrics.Serve}): reply equality against the
   inline reference through every service path (cold, warm, post-evict,
   post-restart disk tier), the degradation ladder (overload shedding at
   the queue bound, budget timeouts, bad requests, fault + poison
   quarantine), the retry/backoff schedule under a recording fake sleep,
   drain semantics, and the health/stats counters.  All engine-level:
   no sockets, no real sleeps, no wall-clock dependence. *)

open Alcotest

let config = Option.get (Machine.Config.of_name "4c1b2l64r")
let base = Option.get (Metrics.Experiment.mode_of_tag "base")
let repl = Option.get (Metrics.Experiment.mode_of_tag "repl")

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let loops =
  lazy (take 5 (Workload.Generator.generate (Workload.Benchmark.find "tomcatv")))

let loop i = List.nth (Lazy.force loops) i

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_test_%d_%d" (Unix.getpid ()) !counter)

let remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> remove_dir dir) (fun () -> f dir)

(* every test drives a silent engine with a no-wait backoff unless it
   is specifically about the backoff schedule *)
let engine ?limits ?backoff ?poison ?store_dir () =
  let backoff =
    match backoff with Some b -> b | None -> Metrics.Backoff.none ()
  in
  Metrics.Serve.create
    ~io:(Metrics.Serve.Io.silent ())
    ?limits ~backoff ?poison ?store_dir ()

(* a worker-pool engine: silent, no-wait backoff on both the inline and
   the per-worker retry paths, and a queue wide enough for batch bursts *)
let worker_engine ?(workers = 1) ?(queue_bound = 256) ?poison () =
  let limits =
    { Metrics.Serve.default_limits with workers; queue_bound }
  in
  Metrics.Serve.create
    ~io:(Metrics.Serve.Io.silent ())
    ~limits
    ~backoff:(Metrics.Backoff.none ())
    ~worker_backoff:(fun _ -> Metrics.Backoff.none ())
    ?poison ()

(* pump (blocking on the worker funnel as needed) until every admitted
   entry has been collected; replies accumulate in completion order *)
let run_to_completion t =
  let out = ref [] in
  while Metrics.Serve.busy t do
    out := !out @ Metrics.Serve.pump_wait t
  done;
  !out

let in_admission_order replies =
  List.sort (fun (a, _) (b, _) -> compare a b) replies |> List.map snd

let request ?id ?budget_s ?budget_attempts ~mode i =
  Metrics.Serve.request ?id ?budget_s ?budget_attempts ~mode ~config (loop i)

let direct ?id ?budget_s ?budget_attempts ~mode i =
  Metrics.Serve.direct_reply ?id ?budget_s ?budget_attempts ~mode ~config
    (loop i)

let field name reply = Metrics.Json.(member name (parse reply))
let status reply = Metrics.Json.to_str (field "status" reply)
let count name reply = Metrics.Json.to_int (field name reply)

(* ------------------------------------------------------------------ *)
(* Reply equality: cold, warm, evict, restart                           *)
(* ------------------------------------------------------------------ *)

let test_cold_warm_equal_direct () =
  let t = engine () in
  List.iter
    (fun mode ->
      List.iter
        (fun i ->
          let reference = direct ~mode i in
          check string "cold reply equals direct" reference
            (Metrics.Serve.handle t (request ~mode i));
          check string "warm reply equals cold" reference
            (Metrics.Serve.handle t (request ~mode i)))
        [ 0; 1 ])
    [ base; repl ]

let test_evict_then_recompute () =
  let t = engine () in
  let cold = Metrics.Serve.handle t (request ~mode:repl 0) in
  check string "evict acks with fixed bytes"
    (Metrics.Json.print
       (Metrics.Json.Obj
          [
            ("id", Metrics.Json.Str "e");
            ("status", Metrics.Json.Str "ok");
            ("role", Metrics.Json.Str "evict");
          ]))
    (Metrics.Serve.handle t
       (Metrics.Serve.evict_request ~id:"e" ~mode:repl ~config (loop 0)));
  check string "recompute after evict equals cold" cold
    (Metrics.Serve.handle t (request ~mode:repl 0));
  let stats = Metrics.Serve.handle t (Metrics.Serve.stats_request ()) in
  check int "one eviction counted" 1 (count "evictions" stats);
  check int "evicted entry recomputed as a miss" 2 (count "misses" stats)

let test_restart_serves_disk_tier () =
  with_dir @@ fun dir ->
  let t1 = engine ~store_dir:dir () in
  let cold =
    List.map (fun i -> Metrics.Serve.handle t1 (request ~mode:repl i)) [ 0; 1 ]
  in
  Metrics.Serve.save t1;
  let t2 = engine ~store_dir:dir () in
  let warm =
    List.map (fun i -> Metrics.Serve.handle t2 (request ~mode:repl i)) [ 0; 1 ]
  in
  check (list string) "restarted replies byte-identical" cold warm;
  let stats = Metrics.Serve.handle t2 (Metrics.Serve.stats_request ()) in
  check int "restarted engine recomputed nothing" 0 (count "misses" stats);
  check int "restarted engine served from the store" 2 (count "hits" stats)

(* ------------------------------------------------------------------ *)
(* Backpressure and drain                                               *)
(* ------------------------------------------------------------------ *)

let test_queue_bound_sheds () =
  let limits = { Metrics.Serve.default_limits with queue_bound = 2 } in
  let t = engine ~limits () in
  let lines = List.map (fun i -> request ~mode:base i) [ 0; 1; 2 ] in
  (match List.map (Metrics.Serve.offer t) lines with
  | [ None; None; Some shed ] ->
      check string "excess load answered overloaded" "overloaded" (status shed);
      check string "shed reply carries the request id" (loop 2).Workload.Generator.id
        (Metrics.Json.to_str (field "id" shed))
  | _ -> failf "queue bound 2 did not admit exactly 2 of 3");
  check int "pending counts the admitted requests" 2 (Metrics.Serve.pending t);
  (* admission order is reply order, and queued service still matches
     the inline reference *)
  List.iteri
    (fun i line ->
      match Metrics.Serve.step t with
      | Some (line', reply) ->
          check string "step dequeues in admission order" line line';
          check string "queued reply equals direct" (direct ~mode:base i) reply
      | None -> failf "step %d found an empty queue" i)
    [ List.nth lines 0; List.nth lines 1 ];
  check bool "drained queue steps None" true (Metrics.Serve.step t = None);
  (* the shed made room: the queue admits again *)
  check bool "freed queue admits again" true
    (Metrics.Serve.offer t (List.nth lines 2) = None)

let test_drain_sheds_but_finishes_admitted () =
  let t = engine () in
  let line = request ~mode:base 0 in
  check bool "pre-drain offer admitted" true (Metrics.Serve.offer t line = None);
  check bool "not draining yet" false (Metrics.Serve.draining t);
  Metrics.Serve.begin_drain t;
  check bool "draining" true (Metrics.Serve.draining t);
  (match Metrics.Serve.offer t (request ~mode:base 1) with
  | Some shed -> check string "drain sheds new work" "overloaded" (status shed)
  | None -> failf "draining engine admitted new work");
  match Metrics.Serve.step t with
  | Some (_, reply) ->
      check string "admitted request still finishes across the drain"
        (direct ~mode:base 0) reply
  | None -> failf "admitted request lost in the drain"

(* ------------------------------------------------------------------ *)
(* Degradation: budgets, bad requests, faults, poison                   *)
(* ------------------------------------------------------------------ *)

let test_budget_degrades_to_timeout () =
  let t = engine () in
  let reply = Metrics.Serve.handle t (request ~budget_attempts:0 ~mode:repl 2) in
  check string "over-budget request degrades" "degraded" (status reply);
  check string "degradation class is timeout" "timeout"
    (Metrics.Json.to_str (field "class" reply));
  check string "timeout replies are wall-clock-free, hence reproducible"
    (direct ~budget_attempts:0 ~mode:repl 2) reply;
  (* a server-default budget degrades the same way *)
  let strict =
    engine
      ~limits:
        { Metrics.Serve.default_limits with budget_attempts = Some 0 }
      ()
  in
  check string "server-wide budget default applies" "degraded"
    (status (Metrics.Serve.handle strict (request ~mode:repl 2)));
  (* timeouts are never cached: lifting the budget recomputes a full
     reply equal to the reference *)
  check string "lifting the budget recovers the real answer"
    (direct ~mode:repl 2)
    (Metrics.Serve.handle t (request ~mode:repl 2))

let test_bad_requests () =
  let t = engine () in
  List.iter
    (fun line ->
      check string
        (Printf.sprintf "%S answers bad-request" line)
        "bad-request"
        (status (Metrics.Serve.handle t line)))
    [
      "";
      "not json at all";
      "{\"op\":\"schedule\",\"id\":\"torn";
      "{\"op\":\"no-such-op\",\"id\":\"x\"}";
      "{\"op\":\"schedule\",\"id\":\"x\",\"mode\":\"warp\",\"config\":\"4c1b2l64r\"}";
    ];
  let reply =
    Metrics.Serve.handle t "{\"op\":\"no-such-op\",\"id\":\"keepme\"}"
  in
  check string "a parseable id survives into the reply" "keepme"
    (Metrics.Json.to_str (field "id" reply));
  (* bad lines hurt only themselves *)
  check string "the engine still serves after bad input"
    (direct ~mode:base 0)
    (Metrics.Serve.handle t (request ~mode:base 0))

let test_fault_retries_backoff_then_poisons () =
  let slept = ref [] in
  let backoff =
    Metrics.Backoff.make ~base_s:0.05 ~factor:2.0 ~jitter:0.0
      ~sleep:(fun d -> slept := d :: !slept)
      ()
  in
  let victim = (loop 3).Workload.Generator.id in
  let t = engine ~backoff ~poison:[ victim ] () in
  let fault = Metrics.Serve.handle t (request ~mode:base 3) in
  check string "crashing request answers fault" "fault" (status fault);
  (* default limits allow 2 retries: attempts 0 and 1 each paused by the
     exact jitter-free exponential before conviction *)
  check (list (float 1e-9)) "retry pauses follow the backoff schedule"
    [ 0.05; 0.1 ] (List.rev !slept);
  let again = Metrics.Serve.handle t (request ~mode:base 3) in
  check string "repeat offender is quarantined" "poisoned" (status again);
  check (list (float 1e-9)) "quarantine never re-runs, so never sleeps"
    [ 0.05; 0.1 ] (List.rev !slept);
  (* conviction is per-key: the same loop under another mode crashes on
     its own (fault, not poisoned), and healthy loops are untouched *)
  check string "other keys convict independently" "fault"
    (status (Metrics.Serve.handle t (request ~mode:repl 3)));
  check string "healthy request unaffected by the quarantine"
    (direct ~mode:base 0)
    (Metrics.Serve.handle t (request ~mode:base 0));
  let stats = Metrics.Serve.handle t (Metrics.Serve.stats_request ()) in
  check int "both convictions counted" 2 (count "faults" stats);
  check int "quarantined answer counted" 1 (count "poisoned" stats);
  check int "every retry counted" 4 (count "retries" stats)

(* ------------------------------------------------------------------ *)
(* Health and stats                                                     *)
(* ------------------------------------------------------------------ *)

let test_health () =
  let t = engine () in
  let reply = Metrics.Serve.handle t (Metrics.Serve.health_request ~id:"h" ()) in
  check string "health is ok" "ok" (status reply);
  check string "health names its role" "health"
    (Metrics.Json.to_str (field "role" reply));
  check string "health echoes the id" "h"
    (Metrics.Json.to_str (field "id" reply));
  check int "nothing pending" 0 (count "pending" reply);
  check bool "not draining" false
    (Metrics.Json.parse reply |> Metrics.Json.member "draining"
     = Metrics.Json.Bool true);
  check string "health pins the scheduler version" Sched.Driver.version
    (Metrics.Json.to_str (field "version" reply))

let test_stats_counters () =
  let t = engine () in
  ignore (Metrics.Serve.handle t (request ~mode:base 0));
  ignore (Metrics.Serve.handle t (request ~mode:base 0));
  ignore (Metrics.Serve.handle t "garbage");
  ignore (Metrics.Serve.handle t (request ~budget_attempts:0 ~mode:base 1));
  let reply = Metrics.Serve.handle t (Metrics.Serve.stats_request ()) in
  check string "stats is ok" "ok" (status reply);
  (* served = answered with a full schedule; the timed-out request is
     counted under timeouts (and its store miss under misses) instead *)
  check int "served counts full answers" 2 (count "served" reply);
  check int "one warm hit" 1 (count "hits" reply);
  check int "cold and timed-out requests both missed" 2 (count "misses" reply);
  check int "one timeout" 1 (count "timeouts" reply);
  check int "one bad request" 1 (count "bad_requests" reply);
  check int "no faults" 0 (count "faults" reply);
  let store = field "store" reply in
  check int "store hit counter agrees" 1
    (Metrics.Json.to_int (Metrics.Json.member "hits" store))

(* ------------------------------------------------------------------ *)
(* Batching, coalescing and the worker pool                             *)
(* ------------------------------------------------------------------ *)

let test_batch_coalesces_to_one_compute () =
  let n = 100 in
  let t = worker_engine () in
  Fun.protect ~finally:(fun () -> Metrics.Serve.shutdown t) @@ fun () ->
  let batch =
    Metrics.Serve.batch_request (List.init n (fun _ -> request ~mode:repl 0))
  in
  check bool "batch admitted atomically" true
    (Metrics.Serve.offer t batch = None);
  (match run_to_completion t with
  | [ (_, reply) ] ->
      check string "burst replies byte-identical to the inline reference"
        (Metrics.Serve.batch_request
           (List.init n (fun _ -> direct ~mode:repl 0)))
        reply
  | rs -> failf "batch answered %d lines, wanted 1" (List.length rs));
  let stats = Metrics.Serve.handle t (Metrics.Serve.stats_request ()) in
  check int "exactly one computation ran" 1 (count "computes" stats);
  check int "every other request coalesced onto it" (n - 1)
    (count "coalesced" stats);
  check int "every slot was a store miss" n (count "misses" stats);
  check int "one batch admitted" 1 (count "batches" stats);
  check int "every waiter was served" n (count "served" stats)

let test_worker_counts_agree_bytewise () =
  let victim = (loop 3).Workload.Generator.id in
  (* mixed workload: two plain misses, a poisoned crasher, a budget
     timeout — then a second wave re-hitting all three degradation
     outcomes once the first wave's convictions have settled *)
  let wave1 () =
    [
      request ~mode:repl 0;
      request ~mode:repl 1;
      request ~mode:base 3;
      request ~budget_attempts:0 ~mode:repl 2;
    ]
  and wave2 () =
    [
      request ~mode:repl 0;
      request ~mode:base 3;
      request ~budget_attempts:0 ~mode:repl 2;
    ]
  in
  let run workers =
    let t =
      if workers = 0 then engine ~poison:[ victim ] ()
      else worker_engine ~workers ~poison:[ victim ] ()
    in
    Fun.protect ~finally:(fun () -> Metrics.Serve.shutdown t) @@ fun () ->
    let wave lines =
      List.iter
        (fun l ->
          match Metrics.Serve.offer t l with
          | None -> ()
          | Some shed -> failf "request shed unexpectedly: %s" shed)
        lines;
      in_admission_order (run_to_completion t)
    in
    wave (wave1 ()) @ wave (wave2 ())
  in
  let reference = run 0 in
  List.iter
    (fun w ->
      check (list string)
        (Printf.sprintf "--workers %d replies byte-equal the inline path" w)
        reference (run w))
    [ 1; 4 ]

let test_drain_finishes_worker_inflight () =
  let t = worker_engine ~workers:2 () in
  Fun.protect ~finally:(fun () -> Metrics.Serve.shutdown t) @@ fun () ->
  let lines = [ request ~mode:repl 0; request ~mode:repl 1 ] in
  List.iter
    (fun l ->
      check bool "pre-drain offer admitted" true
        (Metrics.Serve.offer t l = None))
    lines;
  Metrics.Serve.begin_drain t;
  check (list string) "admitted misses finish across the drain"
    [ direct ~mode:repl 0; direct ~mode:repl 1 ]
    (in_admission_order (run_to_completion t));
  match Metrics.Serve.offer t (request ~mode:repl 2) with
  | Some shed ->
      check string "draining sheds new work" "overloaded" (status shed)
  | None -> failf "draining engine admitted new work"

let suite =
  [
    test_case "cold and warm replies equal the inline reference" `Slow
      test_cold_warm_equal_direct;
    test_case "evict acks and recomputes to the same bytes" `Quick
      test_evict_then_recompute;
    test_case "restart serves the disk tier byte-identically" `Quick
      test_restart_serves_disk_tier;
    test_case "queue bound sheds, admission order is reply order" `Quick
      test_queue_bound_sheds;
    test_case "drain sheds new work, finishes admitted work" `Quick
      test_drain_sheds_but_finishes_admitted;
    test_case "budget expiry degrades to a timeout reply" `Quick
      test_budget_degrades_to_timeout;
    test_case "bad requests answer bad-request and hurt only themselves"
      `Quick test_bad_requests;
    test_case "faults retry on the backoff schedule, then poison" `Quick
      test_fault_retries_backoff_then_poisons;
    test_case "health reply" `Quick test_health;
    test_case "stats counters" `Quick test_stats_counters;
    test_case "a batched burst coalesces onto one computation" `Quick
      test_batch_coalesces_to_one_compute;
    test_case "worker counts 0/1/4 answer byte-identically" `Slow
      test_worker_counts_agree_bytewise;
    test_case "drain finishes worker in-flight computations" `Quick
      test_drain_finishes_worker_inflight;
  ]
