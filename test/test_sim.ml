(* Simulator: static checker and lockstep executor. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let config4c = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64
let unified = Machine.Config.unified ~registers:64

let schedule config g =
  match Sched.Driver.schedule_loop config g with
  | Ok o -> o
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)

let test_checker_accepts_good () =
  List.iter
    (fun g ->
      List.iter
        (fun config ->
          let o = schedule config g in
          match Sim.Checker.check o.Sched.Driver.schedule with
          | Ok () -> ()
          | Error es -> Alcotest.failf "violations: %s" (String.concat "; " es))
        [ config4c; unified ])
    [
      Ddg.Examples.figure3 ();
      Ddg.Examples.tiny_chain ~n:6 ();
      Ddg.Examples.with_recurrence ();
    ]

let corrupt o f =
  let s = o.Sched.Driver.schedule in
  let cycles = Array.copy s.Sched.Schedule.cycles in
  f cycles;
  { s with Sched.Schedule.cycles }

let test_checker_catches_dependence_violation () =
  let g = Ddg.Examples.tiny_chain ~n:4 () in
  let o = schedule unified g in
  (* move the chain's last node to cycle 0: its input is not ready *)
  let bad = corrupt o (fun c -> c.(3) <- 0) in
  check bool "caught" true (Result.is_error (Sim.Checker.check bad))

let test_checker_catches_fu_oversubscription () =
  let g = Ddg.Examples.figure3 () in
  let o = schedule config4c g in
  (* squeeze every node into cycle 0 of cluster assignments: FU conflicts *)
  let bad = corrupt o (fun c -> Array.fill c 0 (Array.length c) 0) in
  check bool "caught" true (Result.is_error (Sim.Checker.check bad))

let test_checker_register_toggle () =
  (* tiny register file: the checker flags pressure unless disabled *)
  let tight = Machine.Config.custom ~clusters:1 ~buses:0 ~bus_latency:0
      ~registers:1 ~fus_per_cluster:(4, 4, 4) in
  let g = Ddg.Examples.tiny_chain ~n:6 () in
  match Sched.Driver.schedule_loop ~latency0:true tight g with
  | Error _ -> () (* driver may fail for pressure; also fine *)
  | Ok o ->
      let r = Sim.Checker.check ~registers:false o.Sched.Driver.schedule in
      check bool "passes without register check" true (Result.is_ok r)

let test_lockstep_counts () =
  let g = Ddg.Examples.figure3 () in
  let o = schedule config4c g in
  let s = o.Sched.Driver.schedule in
  let counts = Sim.Lockstep.run_exn s ~iterations:100 in
  let n = Ddg.Graph.n_nodes s.Sched.Schedule.route.Sched.Route.graph in
  check int "cycles = (N-1+SC)*II"
    ((100 - 1 + Sched.Schedule.stage_count s) * s.Sched.Schedule.ii)
    counts.Sim.Lockstep.cycles;
  check int "dynamic ops" (100 * n) counts.Sim.Lockstep.dynamic_ops;
  check int "copies"
    (100 * Sched.Route.n_copies s.Sched.Schedule.route)
    counts.Sim.Lockstep.dynamic_copies;
  check int "useful default"
    (100 * (n - Sched.Route.n_copies s.Sched.Schedule.route))
    counts.Sim.Lockstep.useful_ops;
  check bool "explicit prefix bounded" true
    (counts.Sim.Lockstep.explicit_iterations <= 100)

let test_lockstep_useful_override () =
  let g = Ddg.Examples.tiny_chain ~n:3 () in
  let o = schedule unified g in
  let c =
    Sim.Lockstep.run_exn ~useful_per_iteration:2 o.Sched.Driver.schedule
      ~iterations:10
  in
  check int "useful overridden" 20 c.Sim.Lockstep.useful_ops

let test_lockstep_rejects_bad_schedule () =
  let g = Ddg.Examples.tiny_chain ~n:4 () in
  let o = schedule unified g in
  let bad = corrupt o (fun c -> c.(3) <- 0) in
  check bool "execution fails" true
    (Result.is_error (Sim.Lockstep.run bad ~iterations:8))

let test_lockstep_one_iteration () =
  let g = Ddg.Examples.tiny_chain ~n:4 () in
  let o = schedule unified g in
  let c = Sim.Lockstep.run_exn o.Sched.Driver.schedule ~iterations:1 in
  check int "one iteration"
    (Sched.Schedule.stage_count o.Sched.Driver.schedule
     * o.Sched.Driver.schedule.Sched.Schedule.ii)
    c.Sim.Lockstep.cycles;
  check bool "rejects zero iterations" true
    (Result.is_error (Sim.Lockstep.run o.Sched.Driver.schedule ~iterations:0))

let test_lockstep_matches_analytic_on_replicated () =
  let g = Ddg.Examples.figure3 () in
  let config =
    Machine.Config.custom ~clusters:4 ~buses:1 ~bus_latency:1 ~registers:64
      ~fus_per_cluster:(4, 0, 0)
  in
  let tr, _ = Replication.Replicate.transform () in
  match Sched.Driver.schedule_loop ~transform:tr config g with
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)
  | Ok o ->
      let s = o.Sched.Driver.schedule in
      let c =
        Sim.Lockstep.run_exn ~useful_per_iteration:14 s ~iterations:50
      in
      check int "analytic texec"
        (Sched.Schedule.execution_cycles s ~iterations:50)
        c.Sim.Lockstep.cycles;
      check int "useful counts originals only" (50 * 14)
        c.Sim.Lockstep.useful_ops

let suite =
  [
    Alcotest.test_case "checker accepts good schedules" `Quick
      test_checker_accepts_good;
    Alcotest.test_case "checker catches dependence violation" `Quick
      test_checker_catches_dependence_violation;
    Alcotest.test_case "checker catches fu oversubscription" `Quick
      test_checker_catches_fu_oversubscription;
    Alcotest.test_case "checker register toggle" `Quick
      test_checker_register_toggle;
    Alcotest.test_case "lockstep counts" `Quick test_lockstep_counts;
    Alcotest.test_case "lockstep useful override" `Quick
      test_lockstep_useful_override;
    Alcotest.test_case "lockstep rejects bad schedule" `Quick
      test_lockstep_rejects_bad_schedule;
    Alcotest.test_case "lockstep one iteration" `Quick
      test_lockstep_one_iteration;
    Alcotest.test_case "lockstep matches analytic on replicated" `Quick
      test_lockstep_matches_analytic_on_replicated;
  ]
