(* Spill-code insertion under register pressure. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tight32 = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:32

let rec take k = function
  | [] -> [] | _ when k = 0 -> [] | x :: tl -> x :: take (k - 1) tl

let test_rewrite_inserts_pair () =
  (* craft a pressure case: schedule on a roomy machine, then ask the
     rewriter to spill as if the file were tiny *)
  let l = List.hd (Workload.Generator.generate (Workload.Benchmark.find "fpppp")) in
  let g = l.Workload.Generator.graph in
  let roomy = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:256 in
  match Sched.Driver.schedule_loop roomy g with
  | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)
  | Ok o -> (
      let assign =
        Array.sub o.Sched.Driver.schedule.Sched.Schedule.route.Sched.Route.assign
          0 (Ddg.Graph.n_nodes o.Sched.Driver.graph)
      in
      match
        Sched.Spill.rewrite tight32 o.Sched.Driver.schedule
          ~graph:o.Sched.Driver.graph ~assign
      with
      | None -> () (* pressure may genuinely be low; fine *)
      | Some (g', assign') ->
          check int "two new nodes" (Ddg.Graph.n_nodes o.Sched.Driver.graph + 2)
            (Ddg.Graph.n_nodes g');
          check int "assign covers" (Ddg.Graph.n_nodes g')
            (Array.length assign');
          (* a store and a load were appended *)
          let n = Ddg.Graph.n_nodes g' in
          check bool "store appended" true (Ddg.Graph.is_store g' (n - 2));
          check bool "reload appended" true
            (Ddg.Graph.op g' (n - 1) = Machine.Opclass.Load))

let test_spiller_reduces_ii_on_tight_machine () =
  (* across pressure-heavy loops, spilling should never lose to pure II
     escalation, and should win somewhere *)
  let loops = take 12 (Workload.Generator.generate (Workload.Benchmark.find "fpppp")) in
  let won = ref 0 in
  List.iter
    (fun (l : Workload.Generator.loop) ->
      let plain = Sched.Driver.schedule_loop tight32 l.graph in
      let spilled =
        Sched.Driver.schedule_loop ~spiller:Sched.Spill.spiller tight32 l.graph
      in
      match (plain, spilled) with
      | Ok p, Ok s ->
          Sim.Checker.check_exn s.Sched.Driver.schedule;
          if s.Sched.Driver.ii < p.Sched.Driver.ii then incr won
      | Error _, Ok s ->
          (* spilling rescued an unschedulable loop *)
          Sim.Checker.check_exn s.Sched.Driver.schedule;
          incr won
      | _, Error _ -> ())
    loops;
  check bool "spilling wins at least once" true (!won > 0)

let test_spilled_schedules_simulate () =
  let loops = take 6 (Workload.Generator.generate (Workload.Benchmark.find "fpppp")) in
  List.iter
    (fun (l : Workload.Generator.loop) ->
      match
        Sched.Driver.schedule_loop ~spiller:Sched.Spill.spiller tight32 l.graph
      with
      | Error _ -> ()
      | Ok o ->
          let c =
            Sim.Lockstep.run_exn
              ~useful_per_iteration:(Ddg.Graph.n_nodes l.graph)
              o.Sched.Driver.schedule ~iterations:20
          in
          check bool "simulates" true (c.Sim.Lockstep.cycles > 0))
    loops

let suite =
  [
    Alcotest.test_case "rewrite inserts store/reload" `Quick
      test_rewrite_inserts_pair;
    Alcotest.test_case "spiller reduces ii on tight machine" `Quick
      test_spiller_reduces_ii_on_tight_machine;
    Alcotest.test_case "spilled schedules simulate" `Quick
      test_spilled_schedules_simulate;
  ]
