(* Content-addressed schedule store ({!Metrics.Store}): byte-identical
   cache service through both tiers and at any job count, the caching
   policy (timeouts and bugs never recorded, give-ups recorded with
   their class), scheduler-version invalidation of the disk tier,
   eviction, the independent schedule oracle over fully cache-served
   runs, and the always-on profile counters. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let small_loops =
  lazy
    (List.concat_map
       (fun b -> take 2 (Workload.Generator.generate b))
       Workload.Benchmark.all)

let config = Option.get (Machine.Config.of_name "4c1b2l64r")

let render_all ?jobs ?store () =
  let suite =
    Metrics.Suite.create ~loops:(Lazy.force small_loops) ?jobs ?store ()
  in
  Metrics.Figures.all suite

let renders = Alcotest.(list (pair string string))

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sched_store_test_%d_%d" (Unix.getpid ()) !counter)

let remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> remove_dir dir) (fun () -> f dir)

(* A run every figure needs, served entirely from the in-memory tier on
   the second pass: renders must be byte-identical and the pass must
   add no misses. *)
let test_memory_tier_byte_equal () =
  let store = Metrics.Store.create () in
  let cold = render_all ~store () in
  let after_cold = Metrics.Store.stats store in
  check bool "cold pass recorded misses" true (after_cold.misses > 0);
  let warm = render_all ~store () in
  let after_warm = Metrics.Store.stats store in
  check renders "memory-tier service is byte-identical" cold warm;
  check int "warm pass added no misses" after_cold.misses after_warm.misses;
  check bool "warm pass hit" true (after_warm.hits > after_cold.hits)

(* Same through the disk tier: a fresh store over the saved directory
   must serve the whole figure suite without a single miss, and a
   parallel suite (jobs=8) over yet another fresh store must agree
   byte-for-byte. *)
let test_disk_tier_byte_equal () =
  with_dir @@ fun dir ->
  let s1 = Metrics.Store.create ~dir () in
  let cold = render_all ~store:s1 () in
  Metrics.Store.save s1;
  check bool "disk tier wrote bytes" true
    ((Metrics.Store.stats s1).bytes_written > 0);
  let s2 = Metrics.Store.create ~dir () in
  let warm = render_all ~store:s2 () in
  let st2 = Metrics.Store.stats s2 in
  check renders "disk-tier service is byte-identical" cold warm;
  check int "warm run from disk has zero misses" 0 st2.misses;
  check bool "warm run from disk hit" true (st2.hits > 0);
  check bool "warm run read the disk tier" true (st2.bytes_read > 0);
  let s3 = Metrics.Store.create ~dir () in
  let warm8 = render_all ~jobs:8 ~store:s3 () in
  check renders "cache-served figures at jobs=8" cold warm8;
  check int "jobs=8 warm run has zero misses" 0
    (Metrics.Store.stats s3).misses

(* Every schedule a cache-served sweep returns must satisfy the
   independent oracle, exactly like a direct run's ({!Check.Validate}
   knows nothing about the store). *)
let test_validate_cache_served () =
  with_dir @@ fun dir ->
  let loops = take 8 (Lazy.force small_loops) in
  let populate = Metrics.Store.create ~dir () in
  let cold_suite = Metrics.Suite.create ~loops ~store:populate () in
  List.iter
    (fun mode -> ignore (Metrics.Suite.runs cold_suite mode config))
    [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ];
  Metrics.Store.save populate;
  let serve = Metrics.Store.create ~dir () in
  let warm_suite = Metrics.Suite.create ~loops ~store:serve () in
  List.iter
    (fun mode ->
      let runs = Metrics.Suite.runs warm_suite mode config in
      check bool "cache-served sweep produced runs" true (runs <> []);
      List.iter
        (fun (r : Metrics.Experiment.loop_run) ->
          match
            Check.Validate.run ~original:r.loop.Workload.Generator.graph
              r.outcome.Sched.Driver.schedule
          with
          | Ok () -> ()
          | Error issues ->
              Alcotest.failf "oracle rejects cache-served %s: %s"
                r.loop.Workload.Generator.id
                (String.concat "; " (Check.Validate.to_strings issues)))
        runs)
    [ Metrics.Experiment.Baseline; Metrics.Experiment.Replication ];
  check int "oracle pass was fully cache-served" 0
    (Metrics.Store.stats serve).misses

let lookup_is_miss store l =
  match
    Metrics.Store.lookup store ~mode:Metrics.Experiment.Baseline ~config l
  with
  | Metrics.Store.Miss -> true
  | Metrics.Store.Hit _ | Metrics.Store.Hit_give_up _ -> false

(* Timeouts are wall-clock-dependent and bug-class errors must stay
   loud, so recording either is a silent no-op; give-ups are data and
   come back with their class. *)
let test_record_policy () =
  let l = List.hd (Lazy.force small_loops) in
  let store = Metrics.Store.create () in
  let record err =
    Metrics.Store.record store ~mode:Metrics.Experiment.Baseline ~config l
      (Error err)
  in
  record (Sched.Sched_error.Timeout { at_ii = 3; attempts = 0; elapsed_s = 0.1 });
  check bool "timeout never cached" true (lookup_is_miss store l);
  record (Sched.Sched_error.Internal "boom");
  check bool "bug never cached" true (lookup_is_miss store l);
  record (Sched.Sched_error.Checker_violation [ "bad" ]);
  check bool "checker violation never cached" true (lookup_is_miss store l);
  let give_up = Sched.Sched_error.Escalation_cap { mii = 3; cap = 5 } in
  record give_up;
  (match
     Metrics.Store.lookup store ~mode:Metrics.Experiment.Baseline ~config l
   with
  | Metrics.Store.Hit_give_up (cls, _) ->
      check Alcotest.string "give-up class round-trips"
        (Sched.Sched_error.class_name give_up)
        cls
  | Metrics.Store.Hit _ | Metrics.Store.Miss ->
      Alcotest.fail "give-up was not cached");
  (* A success recorded after the give-up does not displace it (first
     write wins; determinism makes a real conflict impossible). *)
  (match Metrics.Experiment.run_loop Metrics.Experiment.Baseline config l with
  | Ok r ->
      Metrics.Store.record store ~mode:Metrics.Experiment.Baseline ~config l
        (Ok r)
  | Error e -> Alcotest.failf "run failed: %s" (Sched.Sched_error.to_string e));
  match
    Metrics.Store.lookup store ~mode:Metrics.Experiment.Baseline ~config l
  with
  | Metrics.Store.Hit_give_up _ -> ()
  | Metrics.Store.Hit _ | Metrics.Store.Miss ->
      Alcotest.fail "first write did not win"

let record_success store l =
  match Metrics.Experiment.run_loop Metrics.Experiment.Baseline config l with
  | Ok r ->
      Metrics.Store.record store ~mode:Metrics.Experiment.Baseline ~config l
        (Ok r);
      r
  | Error e -> Alcotest.failf "run failed: %s" (Sched.Sched_error.to_string e)

let replace_all ~sub ~by text =
  let ls = String.length sub and lt = String.length text in
  let buf = Buffer.create lt in
  let i = ref 0 in
  while !i <= lt - ls do
    if String.equal (String.sub text !i ls) sub then begin
      Buffer.add_string buf by;
      i := !i + ls
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  Buffer.add_substring buf text !i (lt - !i);
  Buffer.contents buf

(* A saved file stamped by a different scheduler version must be
   ignored wholesale: stale caches self-invalidate. *)
let test_version_invalidation () =
  with_dir @@ fun dir ->
  let l = List.hd (Lazy.force small_loops) in
  let store = Metrics.Store.create ~dir () in
  ignore (record_success store l);
  Metrics.Store.save store;
  let reread = Metrics.Store.create ~dir () in
  check bool "same version serves" false (lookup_is_miss reread l);
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let text = In_channel.with_open_text path In_channel.input_all in
      let patched =
        replace_all ~sub:Sched.Driver.version ~by:"stale-0" text
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc patched))
    (Sys.readdir dir);
  let fresh = Metrics.Store.create ~dir () in
  check bool "other scheduler version ignored" true (lookup_is_miss fresh l)

(* A torn table file — hand-truncated mid-JSON, as a crash mid-write or
   disk corruption would leave it — is quarantined at load: renamed to
   <file>.corrupt (warning on stderr), never fatal, and the store
   continues cold with the entry recomputable. *)
let test_corrupt_file_quarantined () =
  with_dir @@ fun dir ->
  let l = List.hd (Lazy.force small_loops) in
  let store = Metrics.Store.create ~dir () in
  ignore (record_success store l);
  Metrics.Store.save store;
  let table =
    match
      List.filter
        (fun f -> Filename.check_suffix f ".json")
        (Array.to_list (Sys.readdir dir))
    with
    | [ f ] -> Filename.concat dir f
    | fs -> Alcotest.failf "expected one table file, found %d" (List.length fs)
  in
  let text = In_channel.with_open_text table In_channel.input_all in
  Out_channel.with_open_text table (fun oc ->
      Out_channel.output_string oc (String.sub text 0 40));
  let reread = Metrics.Store.create ~dir () in
  check bool "torn table answers cold" true (lookup_is_miss reread l);
  check bool "torn file renamed aside" false (Sys.file_exists table);
  check bool "quarantined to .corrupt" true
    (Sys.file_exists (table ^ ".corrupt"));
  ignore (record_success reread l);
  check bool "recomputed entry answers again" false (lookup_is_miss reread l)

let test_evict () =
  let l = List.hd (Lazy.force small_loops) in
  let store = Metrics.Store.create () in
  let r = record_success store l in
  check bool "recorded entry answers" false (lookup_is_miss store l);
  Metrics.Store.evict store ~mode:Metrics.Experiment.Baseline ~config l;
  check bool "evicted entry misses" true (lookup_is_miss store l);
  Metrics.Store.record store ~mode:Metrics.Experiment.Baseline ~config l
    (Ok r);
  check bool "re-recorded entry answers again" false (lookup_is_miss store l)

(* Dirty-table tracking: a save writes each touched table once; a
   second save with nothing new skips every table, and a fresh store
   over the same directory that only serves hits saves nothing on
   shutdown. *)
let test_save_skips_clean_tables () =
  with_dir @@ fun dir ->
  let l = List.hd (Lazy.force small_loops) in
  let store = Metrics.Store.create ~dir () in
  ignore (record_success store l);
  Metrics.Store.save store;
  let st1 = Metrics.Store.stats store in
  check int "first save wrote the dirty table" 1 st1.tables_saved;
  check int "first save skipped nothing" 0 st1.tables_skipped;
  Metrics.Store.save store;
  let st2 = Metrics.Store.stats store in
  check int "repeated save wrote nothing new" 1 st2.tables_saved;
  check int "repeated save skipped the clean table" 1 st2.tables_skipped;
  check int "repeated save moved no bytes" st1.bytes_written st2.bytes_written;
  (* a new record dirties exactly its own table again *)
  Metrics.Store.record store ~mode:Metrics.Experiment.Replication ~config l
    (Error (Sched.Sched_error.Escalation_cap { mii = 3; cap = 5 }));
  Metrics.Store.save store;
  let st3 = Metrics.Store.stats store in
  check int "the new table saved" 2 st3.tables_saved;
  check int "the untouched table skipped again" 2 st3.tables_skipped;
  (* an all-hit restart saves nothing at shutdown *)
  let warm = Metrics.Store.create ~dir () in
  check bool "warm store answers from disk" false (lookup_is_miss warm l);
  Metrics.Store.save warm;
  let stw = Metrics.Store.stats warm in
  check int "all-hit shutdown rewrote no table" 0 stw.tables_saved;
  check bool "all-hit shutdown skipped its loaded tables" true
    (stw.tables_skipped > 0)

(* The always-on global counters ({!Sched.Profile.cache_counters})
   mirror per-store traffic. *)
let test_profile_counters () =
  let counters () = Sched.Profile.cache_counters () in
  let before = counters () in
  let l = List.hd (Lazy.force small_loops) in
  let store = Metrics.Store.create () in
  check bool "cold lookup misses" true (lookup_is_miss store l);
  ignore (record_success store l);
  check bool "recorded lookup hits" false (lookup_is_miss store l);
  let after = counters () in
  let delta k = List.assoc k after - List.assoc k before in
  check bool "global hit counter advanced" true (delta "hits" >= 1);
  check bool "global miss counter advanced" true (delta "misses" >= 1)

let suite =
  [
    Alcotest.test_case "memory tier byte equality" `Quick
      test_memory_tier_byte_equal;
    Alcotest.test_case "disk tier byte equality (jobs 1 and 8)" `Slow
      test_disk_tier_byte_equal;
    Alcotest.test_case "oracle over cache-served runs" `Slow
      test_validate_cache_served;
    Alcotest.test_case "record policy" `Quick test_record_policy;
    Alcotest.test_case "scheduler-version invalidation" `Quick
      test_version_invalidation;
    Alcotest.test_case "corrupt table file quarantined" `Quick
      test_corrupt_file_quarantined;
    Alcotest.test_case "evict" `Quick test_evict;
    Alcotest.test_case "save skips clean tables" `Quick
      test_save_skips_clean_tables;
    Alcotest.test_case "profile cache counters" `Quick test_profile_counters;
  ]
