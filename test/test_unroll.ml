(* Loop unrolling transform. *)

open Ddg

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_factor_one_is_identity () =
  let g = Examples.with_recurrence () in
  let g' = Workload.Unroll.unroll g ~factor:1 in
  check bool "physically same" true (g == g')

let test_sizes () =
  let g = Examples.figure3 () in
  let g2 = Workload.Unroll.unroll g ~factor:2 in
  check int "nodes doubled" (2 * Graph.n_nodes g) (Graph.n_nodes g2);
  check int "edges doubled" (2 * List.length (Graph.edges g))
    (List.length (Graph.edges g2));
  let g4 = Workload.Unroll.unroll g ~factor:4 in
  check int "nodes x4" (4 * Graph.n_nodes g) (Graph.n_nodes g4)

let test_recurrence_distances () =
  (* a self-edge of distance 1 becomes a cross-copy chain that closes
     once per unrolled iteration: the recurrence-per-result rate is
     unchanged, so RecMII scales with the factor *)
  let g = Examples.with_recurrence () in
  let rec_1 = Mii.rec_mii g in
  let g2 = Workload.Unroll.unroll g ~factor:2 in
  check int "rec mii doubles" (2 * rec_1) (Mii.rec_mii g2);
  (* and the unified resource bound scales the same way, so per-result
     cost stays flat *)
  let unified = Machine.Config.unified ~registers:64 in
  check bool "res mii scales" true
    (Mii.res_mii unified g2 >= Mii.res_mii unified g)

let test_unrolled_loop_schedulable () =
  let loops = Workload.Generator.generate (Workload.Benchmark.find "turb3d") in
  let l = List.hd loops in
  let l2 = Workload.Unroll.unrolled_loop l ~factor:2 in
  check bool "id suffixed" true
    (String.length l2.Workload.Generator.id
    > String.length l.Workload.Generator.id);
  check bool "trip halved (rounded up)" true
    (l2.Workload.Generator.trip = (l.Workload.Generator.trip + 1) / 2);
  let config = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64 in
  match Sched.Driver.schedule_loop config l2.Workload.Generator.graph with
  | Ok o -> Sim.Checker.check_exn o.Sched.Driver.schedule
  | Error e -> Alcotest.failf "unrolled loop failed: %s" (Sched.Sched_error.to_string e)

let test_unroll_reduces_comm_rate () =
  (* the headline claim: per original iteration, the unrolled loop
     communicates less, because whole copies can live in one cluster *)
  let g = Examples.figure3 () in
  let config = Machine.Config.make ~clusters:4 ~buses:1 ~bus_latency:2 ~registers:64 in
  let comm_rate g factor =
    match Sched.Driver.schedule_loop config g with
    | Ok o ->
        float_of_int o.Sched.Driver.n_comms /. float_of_int factor
    | Error e -> Alcotest.failf "driver: %s" (Sched.Sched_error.to_string e)
  in
  let base = comm_rate g 1 in
  let unrolled = comm_rate (Workload.Unroll.unroll g ~factor:4) 4 in
  check bool "per-iteration comms not higher" true (unrolled <= base +. 1e-9)

let test_invalid_factor () =
  check bool "rejects" true
    (try ignore (Workload.Unroll.unroll (Examples.tiny_chain ()) ~factor:0); false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "factor one identity" `Quick test_factor_one_is_identity;
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "recurrence distances" `Quick test_recurrence_distances;
    Alcotest.test_case "unrolled loop schedulable" `Quick
      test_unrolled_loop_schedulable;
    Alcotest.test_case "unroll reduces comm rate" `Quick
      test_unroll_reduces_comm_rate;
    Alcotest.test_case "invalid factor" `Quick test_invalid_factor;
  ]
