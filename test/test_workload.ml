(* Workload: deterministic RNG, benchmark profiles, loop generation. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_rng_deterministic () =
  let a = Workload.Rng.create 42 and b = Workload.Rng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Workload.Rng.int a 1000) (Workload.Rng.int b 1000)
  done;
  let c = Workload.Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Workload.Rng.int a 1000 <> Workload.Rng.int c 1000 then differs := true
  done;
  check bool "different seeds differ" true !differs

let test_rng_ranges () =
  let r = Workload.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Workload.Rng.int r 10 in
    check bool "in range" true (v >= 0 && v < 10);
    let w = Workload.Rng.range r 5 9 in
    check bool "range inclusive" true (w >= 5 && w <= 9);
    let f = Workload.Rng.float r in
    check bool "unit float" true (f >= 0. && f < 1.)
  done;
  check int "range single" 4 (Workload.Rng.range r 4 4);
  check bool "int rejects" true
    (try ignore (Workload.Rng.int r 0); false with Invalid_argument _ -> true);
  check bool "pick rejects empty" true
    (try ignore (Workload.Rng.pick r ([] : int list)); false
     with Invalid_argument _ -> true)

let test_rng_chance_extremes () =
  let r = Workload.Rng.create 3 in
  for _ = 1 to 50 do
    check bool "p=0 never" false (Workload.Rng.chance r 0.);
    check bool "p=1 always" true (Workload.Rng.chance r 1.)
  done

let test_benchmarks_total () =
  check int "678 loops" 678 Workload.Benchmark.total_loops;
  check int "ten benchmarks" 10 (List.length Workload.Benchmark.all);
  check bool "find" true
    ((Workload.Benchmark.find "MGRID").Workload.Benchmark.name = "mgrid");
  check bool "find missing" true
    (try ignore (Workload.Benchmark.find "gcc"); false
     with Not_found -> true)

let test_suite_shape () =
  let loops = Workload.Generator.suite () in
  check int "678 generated" 678 (List.length loops);
  List.iter
    (fun (l : Workload.Generator.loop) ->
      let p = Workload.Benchmark.find l.benchmark in
      let n = Ddg.Graph.n_nodes l.graph in
      check bool "positive nodes" true (n > 0);
      check bool "trip in profile range" true
        (l.trip >= fst p.Workload.Benchmark.trip
        && l.trip <= snd p.Workload.Benchmark.trip);
      check bool "visits in profile range" true
        (l.visits >= fst p.Workload.Benchmark.visits
        && l.visits <= snd p.Workload.Benchmark.visits);
      check bool "weight positive" true (Workload.Generator.dynamic_weight l > 0))
    loops

let test_generation_deterministic () =
  let a = Workload.Generator.suite () in
  let b = Workload.Generator.suite () in
  List.iter2
    (fun (x : Workload.Generator.loop) (y : Workload.Generator.loop) ->
      check bool "same id" true (x.id = y.id);
      check int "same size" (Ddg.Graph.n_nodes x.graph)
        (Ddg.Graph.n_nodes y.graph);
      check int "same edges"
        (List.length (Ddg.Graph.edges x.graph))
        (List.length (Ddg.Graph.edges y.graph));
      check int "same trip" x.trip y.trip)
    a b

let test_loops_have_memory_and_fp () =
  List.iter
    (fun (l : Workload.Generator.loop) ->
      check bool "has mem ops" true
        (Ddg.Graph.n_ops_of_kind l.graph Machine.Fu.Mem > 0);
      check bool "has fp ops" true
        (Ddg.Graph.n_ops_of_kind l.graph Machine.Fu.Fp > 0);
      check bool "has int ops" true
        (Ddg.Graph.n_ops_of_kind l.graph Machine.Fu.Int > 0))
    (Workload.Generator.generate (Workload.Benchmark.find "hydro2d"))

let test_applu_low_trip () =
  List.iter
    (fun (l : Workload.Generator.loop) ->
      check bool "applu trips tiny" true (l.trip <= 6))
    (Workload.Generator.generate (Workload.Benchmark.find "applu"))

let test_loops_modulo_schedulable () =
  (* every generated loop must schedule on the unified machine at a
     finite II — the suite is the paper's "loops that can be modulo
     scheduled" *)
  let unified = Machine.Config.unified ~registers:64 in
  List.iter
    (fun (l : Workload.Generator.loop) ->
      match Sched.Driver.schedule_loop unified l.graph with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" l.id (Sched.Sched_error.to_string e))
    (Workload.Generator.generate (Workload.Benchmark.find "tomcatv"))

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng chance extremes" `Quick test_rng_chance_extremes;
    Alcotest.test_case "benchmark totals" `Quick test_benchmarks_total;
    Alcotest.test_case "suite shape" `Quick test_suite_shape;
    Alcotest.test_case "generation deterministic" `Quick
      test_generation_deterministic;
    Alcotest.test_case "loops have all op kinds" `Quick
      test_loops_have_memory_and_fp;
    Alcotest.test_case "applu low trip" `Quick test_applu_low_trip;
    Alcotest.test_case "loops modulo schedulable" `Quick
      test_loops_modulo_schedulable;
  ]
